// Decentralized termination detection — quiescence without a global scan.
//
// The harness used to decide "the cluster is idle" by peeking at the
// network's global in-flight count: a stop-the-world "is everyone idle"
// question no million-process deployment can ask.  Following Plyukhin &
// Agha's decentralized actor termination detection (PAPERS.md) adapted to
// this system's message substrate, quiescence is instead derived from
// *per-process accounts* of locally observable transport facts:
//
//   - a process knows how many messages it handed to the transport
//     (on_send), and learns synchronously when the transport refuses one —
//     a dead destination, a severed partition link, or a send-time loss is
//     a local NACK, so the account is refunded (on_drop);
//   - a transport-level retransmission (on_duplicate) is an extra copy
//     charged to the sending link, exactly like the original;
//   - a process knows how many messages were delivered to it (on_deliver).
//
// No account ever reads another process's state and no event is recorded
// anywhere but at its local endpoint, so the accounts shard perfectly.  A
// *probe* then circulates a weighted token through the accounts in pid
// order, accumulating the send/receive deficit and a per-account version
// signature (the token's "color"): a first wave computing a zero deficit
// is confirmed by a second wave that must see every version unchanged —
// any account touched between the waves dirties the token and the probe
// refuses to conclude, which is what makes the wave safe even when probes
// are issued while traffic is being injected.  Crashed processes are
// handled per the lease model (docs/FAULTS.md): kill() purges their
// traffic (each purge refunding the sender's account), their account is
// frozen at its final value, and the frozen balance keeps the books exact
// across the crash — a dead process is never "pending work".
//
// The conservation argument: every enqueue is exactly one +1 on its
// sender's account (send or duplicate), every dequeue exactly one -1
// (delivery on the receiver, refund on the sender for drops and purges) —
// so the summed deficit equals the transport's in-flight population at
// every step boundary, without ever asking the transport.  Debug builds
// assert that agreement on every probe (Cluster::run_until_quiescent);
// release builds trust the token.
#pragma once

#include <cstdint>
#include <vector>

#include "net/network.h"
#include "util/ids.h"
#include "util/metrics.h"

namespace rgc::core {

class TerminationDetector final : public net::Network::Observer {
 public:
  /// One process's locally-maintained ledger.  `sent` counts messages the
  /// transport accepted from this process (retransmissions included,
  /// refused/aborted sends refunded); `received` counts deliveries to it.
  /// `weight_sent`/`weight_received` carry the same balance in serialized
  /// bytes — the "weighted" half of the token, used for traffic gauges.
  /// `version` bumps on every update: the token's dirtiness signature.
  struct Account {
    std::uint64_t sent{0};
    std::uint64_t received{0};
    std::uint64_t weight_sent{0};
    std::uint64_t weight_received{0};
    std::uint64_t version{0};
    /// Frozen by a crash: the balance stays in the books (purge refunds
    /// have already landed), but the pid is reported among the dead.
    bool dead{false};
  };

  /// `registry`: where the detector publishes its probe counters/gauges
  /// (the cluster hands its network registry so the report picks them up).
  explicit TerminationDetector(util::Metrics& registry);

  /// Creates (or revives, after restart()) the account for `pid`.
  void attach(ProcessId pid);
  /// Freezes `pid`'s account — crash semantics; the balance remains.
  void mark_dead(ProcessId pid);

  // net::Network::Observer — every hook touches exactly one account, the
  // endpoint that can observe the event locally.
  void on_send(const net::Envelope& env) override;
  void on_deliver(const net::Envelope& env) override;
  void on_drop(const net::Envelope& env) override;
  void on_duplicate(const net::Envelope& env) override;

  /// One full token circulation (two waves when the first computes a zero
  /// deficit).  Returns true when termination is confirmed: zero deficit
  /// and an unchanged version signature between the waves.  O(processes),
  /// touching only the accounts.
  bool probe();

  /// Verdict of the last probe().
  [[nodiscard]] bool quiescent() const noexcept { return last_verdict_; }
  /// Deficit (messages sent but not yet delivered or refunded) the last
  /// probe observed — the decentralized analogue of "messages in flight".
  [[nodiscard]] std::uint64_t deficit() const noexcept { return last_deficit_; }
  /// Same balance in serialized weight units.
  [[nodiscard]] std::uint64_t weight_deficit() const noexcept {
    return last_weight_deficit_;
  }
  /// Frozen (crashed, not restarted) accounts.
  [[nodiscard]] std::size_t dead() const noexcept { return dead_count_; }

  [[nodiscard]] const Account& account(ProcessId pid) const;

 private:
  Account& slot(ProcessId pid);

  /// Accounts indexed by raw pid (dense: the cluster allocates pids
  /// sequentially), so a token wave is one linear scan.
  std::vector<Account> accounts_;
  std::size_t dead_count_{0};
  bool last_verdict_{true};
  std::uint64_t last_deficit_{0};
  std::uint64_t last_weight_deficit_{0};
  util::Counter probes_;
  util::Counter waves_;
  util::Counter confirmations_;
  util::Gauge deficit_gauge_;
  util::Gauge weight_gauge_;
};

}  // namespace rgc::core
