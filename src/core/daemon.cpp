#include "core/daemon.h"

#include <algorithm>
#include <vector>

#include "util/trace.h"

namespace rgc::core {

GcDaemon::GcDaemon(Cluster& cluster, DaemonConfig config)
    : cluster_(cluster), config_(config) {
  if (config_.collect_period == 0) config_.collect_period = 1;
  if (config_.snapshot_period == 0) config_.snapshot_period = 1;
  // Derive the deferral ceilings from the fixed periods when unset, and
  // never let a ceiling fall below its floor.
  auto& ad = config_.adaptive;
  if (ad.collect_max_deferred == 0) {
    ad.collect_max_deferred = 4 * config_.collect_period;
  }
  ad.collect_max_deferred =
      std::max(ad.collect_max_deferred, config_.collect_period);
  if (ad.sweep_max_deferred == 0) {
    ad.sweep_max_deferred = 8 * config_.snapshot_period;
  }
  ad.sweep_max_deferred =
      std::max(ad.sweep_max_deferred, config_.snapshot_period);
  util::Metrics& registry = cluster_.network().metrics();
  collections_ctr_ = registry.counter("daemon.collections");
  sweeps_ctr_ = registry.counter("daemon.sweeps");
  detections_ctr_ = registry.counter("daemon.detections_started");
  skipped_sweeps_ = registry.counter("daemon.skipped_sweeps");
  skipped_collections_ = registry.counter("daemon.skipped_collections");
  forced_sweeps_ = registry.counter("daemon.forced_sweeps");
  snapshot_bytes_ = registry.counter("daemon.snapshot_bytes");
  deferred_budget_ = registry.gauge("daemon.deferred_budget");
}

void GcDaemon::step() {
  cluster_.step();
  const std::uint64_t now = cluster_.now();
  if (config_.adaptive.enabled) {
    step_adaptive(now);
  } else {
    step_fixed(now);
  }
}

std::uint64_t GcDaemon::sweep(ProcessId pid) {
  util::SpanGuard sweep{"daemon.sweep", pid};
  util::ScopedProcess ctx{pid};
  // The same cadence that snapshots for detection persists the process
  // image (§3.5.1 "periodically … stores a snapshot on disk") — what a
  // later Cluster::restart rehydrates from.  Metric- and epoch-free inside
  // persist(); the daemon accounts the bytes itself.
  cluster_.persist(pid);
  snapshot_bytes_.inc(cluster_.image(pid).size());
  cluster_.detector(pid).take_snapshot();
  ++sweeps_;
  sweeps_ctr_.inc();
  std::uint64_t started = 0;
  std::set<ObjectId> candidates = cluster_.suspects(pid);
  const std::size_t budget = config_.adaptive.detect_budget;
  if (config_.adaptive.enabled && budget != 0 && candidates.size() > budget) {
    // Age-prioritized selection: objects that survived the most
    // collections anchored only remotely go first (the long-lived suspects
    // are the likeliest cycle members); id order breaks ties so the pick
    // is deterministic.
    const gc::SuspicionAgeTracker& tracker = cluster_.suspicion_tracker(pid);
    std::vector<ObjectId> ordered(candidates.begin(), candidates.end());
    std::stable_sort(ordered.begin(), ordered.end(),
                     [&tracker](ObjectId a, ObjectId b) {
                       const std::uint32_t aa = tracker.age(a);
                       const std::uint32_t ab = tracker.age(b);
                       if (aa != ab) return aa > ab;
                       return a < b;
                     });
    ordered.resize(budget);
    for (ObjectId suspect : ordered) {
      if (cluster_.detect(pid, suspect).has_value()) ++started;
    }
  } else {
    for (ObjectId suspect : candidates) {
      if (cluster_.detect(pid, suspect).has_value()) ++started;
    }
  }
  detections_ += started;
  detections_ctr_.inc(started);
  sweep.arg("detections", started);
  return started;
}

void GcDaemon::step_fixed(std::uint64_t now) {
  for (ProcessId pid : cluster_.process_ids()) {
    const std::uint64_t phase = now + raw(pid) * config_.stagger;
    if (phase % config_.collect_period == 0) {
      TRACE_SPAN("daemon.collect", pid);
      cluster_.collect(pid);
      ++collections_;
      collections_ctr_.inc();
    }
    if (phase % config_.snapshot_period == 0) sweep(pid);
  }
}

GcDaemon::Lane& GcDaemon::lane(ProcessId pid, std::uint64_t now) {
  auto [it, inserted] = lanes_.try_emplace(pid);
  Lane& ln = it->second;
  if (inserted) {
    // Stagger first due-points by id, like the fixed schedule, so lanes
    // never line up cluster-wide.
    ln.collect_backoff = config_.collect_period;
    ln.collect_due = now + (raw(pid) * config_.stagger) % config_.collect_period;
    ln.sweep_backoff = config_.snapshot_period;
    ln.sweep_due = now + (raw(pid) * config_.stagger) % config_.snapshot_period;
    ln.last_sweep_at = now;
  }
  return ln;
}

void GcDaemon::step_adaptive(std::uint64_t now) {
  const DaemonConfig::Adaptive& ad = config_.adaptive;
  const std::uint64_t collect_min = config_.collect_period;
  const std::uint64_t sweep_min = config_.snapshot_period;
  // The forced-sweep safety valve reads the auditor's floating-garbage age
  // gauge (deterministic: the audit cadence is part of virtual time).
  const std::uint64_t floating_age =
      ad.max_floating_age == 0
          ? 0
          : cluster_.auditor().metrics().gauge_value("gc.floating_garbage_age");
  std::uint64_t deferral_high_water = 0;
  for (ProcessId pid : cluster_.process_ids()) {
    Lane& ln = lane(pid, now);

    // ---- Collection lane: epoch-gated, Pony-style backoff. ---------------
    // Wake-on-message: any mutation observed on a deferred lane — including
    // a Cut landing on an otherwise-quiet process — snaps the next
    // collection back to the floor.  Deferral only ever spans true quiet;
    // without this, garbage proven by a detection would sit reclaimable for
    // up to a full ceiling waiting on a backed-off schedule.
    // The woken collect runs this step: the lane was quiet, so this is one
    // prompt collection per wake, after which the lane re-enters the
    // normal min-cadence/backoff regime.
    if (ln.has_collected && ln.collect_backoff > collect_min &&
        cluster_.process(pid).mutation_epoch() != ln.last_collect_epoch) {
      ln.collect_backoff = collect_min;
      ln.collect_due = now;
    }
    if (now >= ln.collect_due) {
      const std::uint64_t epoch = cluster_.process(pid).mutation_epoch();
      const bool untouched = ln.has_collected && epoch == ln.last_collect_epoch;
      const bool at_max = ln.collect_backoff >= ad.collect_max_deferred;
      if (untouched && !at_max) {
        // Untouched since the last collection — it cannot have produced
        // new local garbage.  Defer, but never past the ceiling: the
        // acyclic protocol's rounds (NewSetStubs/Unreachable/Reclaim)
        // piggyback on collections and converge over *multiple* rounds,
        // so a lane at max backoff always collects when due.
        skipped_collections_.inc();
        ln.collect_backoff =
            std::min(ln.collect_backoff * 2, ad.collect_max_deferred);
      } else {
        TRACE_SPAN("daemon.collect", pid);
        cluster_.collect(pid);
        ++collections_;
        collections_ctr_.inc();
        // Re-read: the collection's own sweep/stub edits bump the epoch.
        ln.last_collect_epoch = cluster_.process(pid).mutation_epoch();
        ln.has_collected = true;
        // Mutations since last time reset the deferral (Pony's
        // productivity rule); a ceiling-forced round on a quiet heap
        // stays amortized at the ceiling.
        ln.collect_backoff = untouched ? ad.collect_max_deferred : collect_min;
      }
      ln.collect_due = now + ln.collect_backoff;
    }

    // ---- Sweep lane: snapshot + budgeted detection. ----------------------
    const bool due = now >= ln.sweep_due;
    // Safety valve: proven garbage has floated past the age bound — sweep
    // even before the backoff expires, rate-limited to the min cadence so
    // a sticky gauge (deep audits refresh it sparsely) cannot thrash.
    const bool forced = ad.max_floating_age != 0 &&
                        floating_age >= ad.max_floating_age &&
                        now - ln.last_sweep_at >= sweep_min;
    if (due || forced) {
      const std::uint64_t epoch = cluster_.process(pid).mutation_epoch();
      const std::uint64_t delta = epoch - ln.last_sweep_epoch;
      const std::uint64_t elapsed = std::max<std::uint64_t>(1, now - ln.last_sweep_at);
      // Hot: the summary would be dirty again immediately — snapshotting
      // now buys detections a stale view at full price.  Idle: nothing
      // changed, the snapshot would be byte-identical to the last one.
      // Both defer; neither can defer past the ceiling (a due lane at max
      // backoff always sweeps — the completeness bound).
      const bool hot = ad.hot_mutation_pct != 0 &&
                       delta * 100 >= elapsed * ad.hot_mutation_pct;
      const bool idle = delta == 0;
      const bool at_max = ln.sweep_backoff >= ad.sweep_max_deferred;
      if (!forced && ln.has_swept && !at_max && (hot || idle)) {
        skipped_sweeps_.inc();
        ln.sweep_backoff = std::min(ln.sweep_backoff * 2, ad.sweep_max_deferred);
      } else {
        if (forced && !due) forced_sweeps_.inc();
        const std::size_t cycles_before = cluster_.cycles_found().size();
        const std::uint64_t started = sweep(pid);
        // Pony's reset rule: productive detection work (suspects worth
        // chasing, or a cycle actually proven) snaps the deferral back to
        // the floor; a sweep that found nothing to do backs off.
        const bool productive =
            started > 0 || cluster_.cycles_found().size() > cycles_before;
        ln.last_sweep_epoch = cluster_.process(pid).mutation_epoch();
        ln.last_sweep_at = now;
        ln.has_swept = true;
        ln.sweep_backoff =
            productive ? sweep_min
                       : std::min(std::max(ln.sweep_backoff, sweep_min) * 2,
                                  ad.sweep_max_deferred);
      }
      ln.sweep_due = now + ln.sweep_backoff;
    }
    deferral_high_water = std::max(deferral_high_water, ln.sweep_backoff);
  }
  // How far the cluster's most-deferred lane has backed off — the
  // "deferred budget" the policy is currently granting itself.
  deferred_budget_.set(deferral_high_water);
}

void GcDaemon::run(std::uint64_t steps) {
  for (std::uint64_t i = 0; i < steps; ++i) step();
}

}  // namespace rgc::core
