#include "core/daemon.h"

#include "util/trace.h"

namespace rgc::core {

GcDaemon::GcDaemon(Cluster& cluster, DaemonConfig config)
    : cluster_(cluster), config_(config) {
  if (config_.collect_period == 0) config_.collect_period = 1;
  if (config_.snapshot_period == 0) config_.snapshot_period = 1;
}

void GcDaemon::step() {
  cluster_.step();
  const std::uint64_t now = cluster_.now();
  for (ProcessId pid : cluster_.process_ids()) {
    const std::uint64_t phase = now + raw(pid) * config_.stagger;
    if (phase % config_.collect_period == 0) {
      TRACE_SPAN("daemon.collect", pid);
      cluster_.collect(pid);
      ++collections_;
    }
    if (phase % config_.snapshot_period == 0) {
      util::SpanGuard sweep{"daemon.sweep", pid};
      util::ScopedProcess ctx{pid};
      // The same cadence that snapshots for detection persists the process
      // image (§3.5.1 "periodically … stores a snapshot on disk") — what a
      // later Cluster::restart rehydrates from.  Metric- and epoch-free, so
      // it is invisible to deterministic runs.
      cluster_.persist(pid);
      cluster_.detector(pid).take_snapshot();
      ++sweeps_;
      std::uint64_t started = 0;
      for (ObjectId suspect : cluster_.suspects(pid)) {
        if (cluster_.detect(pid, suspect).has_value()) ++started;
      }
      detections_ += started;
      sweep.arg("detections", started);
    }
  }
}

void GcDaemon::run(std::uint64_t steps) {
  for (std::uint64_t i = 0; i < steps; ++i) step();
}

}  // namespace rgc::core
