#include "graphdb/graphdb.h"

#include <deque>
#include <set>
#include <stdexcept>

namespace rgc::graphdb {

GraphStore::GraphStore(GraphStoreConfig config)
    : config_(std::move(config)), cluster_(config_.cluster) {
  if (config_.shards == 0) config_.shards = 1;
  for (std::size_t i = 0; i < config_.shards; ++i) {
    const ProcessId shard = cluster_.add_process();
    shards_.push_back(shard);
    const ObjectId index = cluster_.new_object(shard);
    cluster_.add_root(shard, index);
    index_[shard] = index;
  }
  if (config_.background_gc) {
    daemon_ = std::make_unique<core::GcDaemon>(cluster_, config_.daemon);
  }
}

ProcessId GraphStore::shard_of(VertexId v) const {
  auto it = home_.find(v);
  if (it == home_.end()) {
    throw std::out_of_range("unknown vertex " + to_string(v));
  }
  return it->second;
}

VertexId GraphStore::add_vertex(std::string label) {
  // Spread vertices round-robin; payload size models the label.
  const ProcessId shard = shards_[home_.size() % shards_.size()];
  const VertexId v = cluster_.new_object(
      shard, static_cast<std::uint32_t>(16 + label.size()));
  cluster_.add_ref(shard, index_.at(shard), v);
  labels_[v] = std::move(label);
  home_[v] = shard;
  return v;
}

void GraphStore::remove_vertex(VertexId v) {
  const ProcessId shard = shard_of(v);
  cluster_.process(shard).remove_ref(index_.at(shard), v);
  // Deliberately nothing else: edges into/out of v, replicas of v on
  // other shards, and whole subgraphs v alone kept connected are the
  // garbage collectors' problem now.
}

bool GraphStore::vertex_exists(VertexId v) const {
  for (ProcessId shard : shards_) {
    if (cluster_.process(shard).has_replica(v)) return true;
  }
  // The handle may be stale; drop the label once every replica is gone.
  labels_.erase(v);
  return false;
}

bool GraphStore::vertex_registered(VertexId v) const {
  auto it = home_.find(v);
  if (it == home_.end()) return false;
  const rm::Object* index =
      cluster_.process(it->second).heap().find(index_.at(it->second));
  return index != nullptr && index->references(v);
}

std::optional<std::string> GraphStore::label(VertexId v) const {
  if (!vertex_exists(v)) return std::nullopt;
  auto it = labels_.find(v);
  if (it == labels_.end()) return std::nullopt;
  return it->second;
}

std::size_t GraphStore::vertex_count() const {
  std::size_t count = 0;
  for (ProcessId shard : shards_) {
    const rm::Object* index =
        cluster_.process(shard).heap().find(index_.at(shard));
    if (index != nullptr) count += index->refs.size();
  }
  return count;
}

std::size_t GraphStore::replica_count() const {
  std::size_t count = cluster_.total_objects();
  // Exclude the per-shard index objects themselves.
  return count >= shards_.size() ? count - shards_.size() : 0;
}

void GraphStore::cache_on(VertexId v, ProcessId shard) {
  if (cluster_.process(shard).knows(v)) return;
  cluster_.propagate(v, shard_of(v), shard);
  cluster_.run_until_quiescent();
}

void GraphStore::add_edge(VertexId from, VertexId to) {
  const ProcessId shard = shard_of(from);
  if (!cluster_.process(shard).has_replica(from)) {
    throw std::logic_error("add_edge: source vertex was deleted");
  }
  cache_on(to, shard);
  cluster_.add_ref(shard, from, to);
}

void GraphStore::remove_edge(VertexId from, VertexId to) {
  const ProcessId shard = shard_of(from);
  cluster_.process(shard).remove_ref(from, to);
}

std::vector<VertexId> GraphStore::out_neighbors(VertexId from) const {
  const ProcessId shard = shard_of(from);
  const rm::Object* obj = cluster_.process(shard).heap().find(from);
  if (obj == nullptr) return {};
  std::vector<VertexId> out;
  out.reserve(obj->refs.size());
  obj->for_each_ref([&](const rm::Ref& r) { out.push_back(r.target); });
  return out;
}

std::vector<VertexId> GraphStore::reachable_from(VertexId start,
                                                 std::size_t max_depth) const {
  std::vector<VertexId> out;
  std::set<VertexId> seen{start};
  std::deque<std::pair<VertexId, std::size_t>> frontier{{start, 0}};
  while (!frontier.empty()) {
    const auto [v, depth] = frontier.front();
    frontier.pop_front();
    out.push_back(v);
    if (depth == max_depth) continue;
    if (!home_.contains(v)) continue;
    for (VertexId next : out_neighbors(v)) {
      if (seen.insert(next).second) frontier.push_back({next, depth + 1});
    }
  }
  return out;
}

void GraphStore::refresh_caches() {
  for (const auto& [v, home] : home_) {
    if (!cluster_.process(home).has_replica(v)) continue;
    for (ProcessId shard : shards_) {
      if (shard == home) continue;
      if (!cluster_.process(shard).has_replica(v)) continue;
      cluster_.propagate(v, home, shard);
    }
  }
  cluster_.run_until_quiescent();
}

void GraphStore::step() {
  if (daemon_ != nullptr) {
    daemon_->step();
  } else {
    cluster_.step();
  }
}

void GraphStore::run_steps(std::uint64_t steps) {
  for (std::uint64_t i = 0; i < steps; ++i) step();
}

core::Cluster::FullGcStats GraphStore::run_gc() {
  return cluster_.run_full_gc();
}

}  // namespace rgc::graphdb
