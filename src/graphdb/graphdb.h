// A graph-database layer over the RM substrate — the deployment §1
// motivates: "the algorithms proposed here can be used in a large-scale
// graph database … to safely and efficiently delete sub-graphs that got
// disconnected from the main graph".
//
// Vertices are RM objects sharded by id across the cluster's processes;
// each shard holds an *index* object (its local root) referencing the
// vertices homed there.  Cross-shard edges replicate the target vertex
// into the source's shard first (read-through caching, exactly how a
// store caches a hot remote vertex) and then store the reference — which
// makes every structure the paper worries about appear naturally:
// stub/scion chains, replicas with divergent edge sets, and — after
// remove_vertex unlinks the index entry — replicated acyclic and cyclic
// garbage that only the complete DGC can reclaim.
//
// The store never frees anything itself: deletion is *unlinking*, memory
// management is the collectors' job (run_gc / GcDaemon), and referential
// integrity is the library's promise.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/daemon.h"
#include "util/ids.h"

namespace rgc::graphdb {

/// Application-visible vertex handle (the underlying RM ObjectId).
using VertexId = ObjectId;

struct GraphStoreConfig {
  std::size_t shards{3};
  core::ClusterConfig cluster{};
  /// Background GC cadence used by step()/run_steps(); disable by setting
  /// background_gc to false and calling run_gc() explicitly.
  bool background_gc{true};
  core::DaemonConfig daemon{};
};

class GraphStore {
 public:
  explicit GraphStore(GraphStoreConfig config = {});

  GraphStore(const GraphStore&) = delete;
  GraphStore& operator=(const GraphStore&) = delete;

  // ---- Vertex operations -------------------------------------------------

  /// Creates a vertex (registered in its home shard's index).
  VertexId add_vertex(std::string label);

  /// Unlinks the vertex from its shard index.  The vertex data, its
  /// edges, and any replicas on other shards become garbage *if* nothing
  /// else reaches them — deciding that is the collectors' job, never a
  /// manual free (the paper's whole point).
  void remove_vertex(VertexId v);

  /// True while any replica of the vertex exists anywhere.
  [[nodiscard]] bool vertex_exists(VertexId v) const;

  /// True while the vertex is registered (reachable from its index).
  [[nodiscard]] bool vertex_registered(VertexId v) const;

  [[nodiscard]] std::optional<std::string> label(VertexId v) const;

  /// Registered vertices (index-reachable), cluster-wide.
  [[nodiscard]] std::size_t vertex_count() const;

  /// Replicas currently held, cluster-wide (≥ vertex_count when caching
  /// has replicated vertices across shards; also counts unlinked garbage
  /// the collectors have not reclaimed yet).
  [[nodiscard]] std::size_t replica_count() const;

  // ---- Edge operations -----------------------------------------------------

  /// Adds the directed edge from -> to.  A cross-shard edge caches the
  /// target vertex on the source's shard first (replication), then stores
  /// the reference.
  void add_edge(VertexId from, VertexId to);
  void remove_edge(VertexId from, VertexId to);

  /// Out-neighbours as stored on the *home* replica of `from`.
  [[nodiscard]] std::vector<VertexId> out_neighbors(VertexId from) const;

  /// Breadth-first reachability from `start` over home-replica edges,
  /// up to `max_depth` hops (the "complex semantic queries" stand-in).
  [[nodiscard]] std::vector<VertexId> reachable_from(VertexId start,
                                                     std::size_t max_depth) const;

  // ---- Maintenance ----------------------------------------------------------

  /// Coherence refresh: re-propagates every registered vertex's home
  /// content to the shards already caching it, so cached replicas pick up
  /// edges added after they were created.  Imported references to
  /// vertices not cached locally bind through stubs — after a refresh the
  /// replica graph carries genuine inter-shard reference chains, exactly
  /// the structures §3's detector exists for.
  void refresh_caches();

  /// One simulation step; runs the background daemon cadence when enabled.
  void step();
  void run_steps(std::uint64_t steps);

  /// Synchronous full collection (LGC + acyclic + cycle detection rounds).
  core::Cluster::FullGcStats run_gc();

  [[nodiscard]] core::Cluster& cluster() noexcept { return cluster_; }
  [[nodiscard]] const core::Cluster& cluster() const noexcept { return cluster_; }
  [[nodiscard]] ProcessId shard_of(VertexId v) const;
  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }

 private:
  /// Ensures `v` is resolvable on `shard` (replicating it there if not).
  void cache_on(VertexId v, ProcessId shard);

  GraphStoreConfig config_;
  core::Cluster cluster_;
  std::unique_ptr<core::GcDaemon> daemon_;
  std::vector<ProcessId> shards_;
  std::map<ProcessId, ObjectId> index_;
  /// Application payloads live beside the store (the RM layer models
  /// payload as opaque bytes); erased lazily once the vertex is gone.
  mutable std::map<VertexId, std::string> labels_;
  /// Home shard per vertex (assigned round-robin-by-hash at creation).
  std::map<VertexId, ProcessId> home_;
};

}  // namespace rgc::graphdb
