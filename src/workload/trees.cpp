#include "workload/trees.h"

#include <stdexcept>

#include "workload/figures.h"

namespace rgc::workload {

Tree build_tree(core::Cluster& cluster, const TreeSpec& spec) {
  if (spec.fanout == 0 || spec.processes == 0) {
    throw std::invalid_argument("tree needs fanout and processes >= 1");
  }
  Tree tree;
  const auto existing = cluster.process_ids();
  if (existing.size() >= spec.processes) {
    tree.procs.assign(existing.begin(),
                      existing.begin() + static_cast<long>(spec.processes));
  } else {
    tree.procs = existing;
    while (tree.procs.size() < spec.processes) {
      tree.procs.push_back(cluster.add_process());
    }
  }

  tree.root_process = tree.procs[0];
  tree.root = cluster.new_object(tree.root_process);
  cluster.add_root(tree.root_process, tree.root);
  tree.nodes.push_back(tree.root);

  struct Level {
    std::vector<std::pair<ObjectId, ProcessId>> nodes;
  };
  Level current;
  current.nodes.push_back({tree.root, tree.root_process});

  for (std::size_t depth = 1; depth <= spec.depth; ++depth) {
    Level next;
    for (const auto& [parent, parent_proc] : current.nodes) {
      for (std::size_t k = 0; k < spec.fanout; ++k) {
        const ProcessId child_proc =
            tree.procs[(raw(parent_proc) + 1 + k) % tree.procs.size()];
        const ObjectId child = cluster.new_object(child_proc);
        tree.nodes.push_back(child);
        if (child_proc == parent_proc) {
          cluster.add_ref(parent_proc, parent, child);
        } else {
          make_remote_ref(cluster, parent_proc, parent, child_proc, child);
        }
        ++tree.edges;
        next.nodes.push_back({child, child_proc});
      }
      if (spec.replicate_internals && !next.nodes.empty()) {
        const ProcessId to = next.nodes.back().second;
        if (to != parent_proc) {
          cluster.propagate(parent, parent_proc, to);
        }
      }
    }
    cluster.run_until_quiescent();
    current = std::move(next);
  }
  settle(cluster);
  return tree;
}

TreeRing build_tree_ring(core::Cluster& cluster, const TreeSpec& spec,
                         std::size_t count) {
  if (count < 2) throw std::invalid_argument("a ring needs >= 2 trees");
  TreeRing ring;
  for (std::size_t i = 0; i < count; ++i) {
    ring.trees.push_back(build_tree(cluster, spec));
    ring.total_nodes += ring.trees.back().nodes.size();
  }
  // Tip-to-root links closing the ring.
  for (std::size_t i = 0; i < count; ++i) {
    const Tree& from = ring.trees[i];
    const Tree& to = ring.trees[(i + 1) % count];
    const ObjectId tip = from.nodes.back();
    // The tip lives on some process; find it.
    ProcessId tip_proc = kNoProcess;
    for (ProcessId p : from.procs) {
      if (cluster.process(p).has_replica(tip)) {
        tip_proc = p;
        break;
      }
    }
    if (tip_proc == to.root_process) {
      cluster.add_ref(tip_proc, tip, to.root);
    } else {
      make_remote_ref(cluster, tip_proc, tip, to.root_process, to.root);
    }
  }
  // Drop every tree's mutator root: the composite is now garbage — an
  // acyclic bulk hanging off a cyclic spine.
  for (const Tree& tree : ring.trees) {
    cluster.remove_root(tree.root_process, tree.root);
  }
  settle(cluster);
  return ring;
}

}  // namespace rgc::workload
