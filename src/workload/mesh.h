// Replicated triangle-mesh ring — the scalability workload of §5.2.
//
// "Each synthetic graph consists on a triangle mesh in which each triangle
// forms a cycle ... with four replicated nodes and 100 dependencies, we
// have 4 physical nodes with 100 links to any of the other three physical
// nodes.  All these links are connected in a large cycle of garbage which
// spans all 4 nodes."
//
// Construction: a chain of strand objects walks the process ring.  Each hop
// from Pj to Pj+1 builds one triangle:
//
//     X@Pj ⇢ X@Pj+1        (propagation link)
//     X@Pj+1 -> Z  locally  (Z is the next strand object, created on Pj+1)
//     X@Pj  -> Z  remotely  (reference link)
//
// i.e. two inter-process dependencies per hop, one of each kind.  With
// `laps` trips around the ring every adjacent pair carries 2·laps
// dependencies; the final hop reconnects to the head, closing one garbage
// cycle spanning every process.  Optionally each strand object is also
// propagated to `extra_replicas` bystander processes, raising the
// replication factor without changing the cycle's reference skeleton.
#pragma once

#include <cstddef>
#include <vector>

#include "core/cluster.h"
#include "util/ids.h"

namespace rgc::workload {

struct MeshSpec {
  /// Number of processes (the paper's "replicated nodes"), >= 2.
  std::size_t processes{4};
  /// Inter-process dependencies (remote references + propagations) between
  /// each adjacent pair of processes; the chain makes ceil(D/2) laps.
  std::size_t dependencies{10};
  /// Bystander replicas per strand object (propagated, never referenced).
  std::size_t extra_replicas{0};
};

struct Mesh {
  std::vector<ProcessId> procs;
  /// First strand object — the natural detection candidate.
  ObjectId head{kNoObject};
  ProcessId head_process{kNoProcess};
  /// Every strand object, in chain order.
  std::vector<ObjectId> strand;
  /// Total inter-process links built (props + remote refs).
  std::size_t total_links{0};
};

Mesh build_mesh(core::Cluster& cluster, const MeshSpec& spec);

}  // namespace rgc::workload
