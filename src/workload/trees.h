// Structured bulk workloads: replicated trees, deep chains and churn —
// the shapes a real store produces at volume, used by scale/property
// tests beyond the paper-figure topologies.
#pragma once

#include <cstddef>
#include <vector>

#include "core/cluster.h"
#include "util/ids.h"

namespace rgc::workload {

struct TreeSpec {
  /// Branching factor and depth of the tree (node count ~ fanout^depth).
  std::size_t fanout{2};
  std::size_t depth{4};
  /// Processes participating; nodes are distributed level-round-robin.
  std::size_t processes{3};
  /// Replicate every internal node onto the shard of its first child
  /// (creating inter-level prop links in addition to the edges).
  bool replicate_internals{true};
};

struct Tree {
  std::vector<ProcessId> procs;
  ObjectId root{kNoObject};
  ProcessId root_process{kNoProcess};
  std::vector<ObjectId> nodes;  // breadth-first
  std::size_t edges{0};
};

/// Builds a rooted tree spanning the processes; the root is held by a
/// mutator root on its process.  Dropping that root turns the whole tree
/// (with its replicas) into garbage — acyclic, so the reference-listing
/// machinery alone must reclaim it.
Tree build_tree(core::Cluster& cluster, const TreeSpec& spec);

/// Links `count` trees tip-to-root into a ring (tree_i's deepest leaf
/// references tree_{i+1}'s root), then drops every tree root: a large
/// composite garbage structure whose spine is a cycle and whose bulk is
/// acyclic — exercises the acyclic/cyclic hand-off at volume.
struct TreeRing {
  std::vector<Tree> trees;
  std::size_t total_nodes{0};
};
TreeRing build_tree_ring(core::Cluster& cluster, const TreeSpec& spec,
                         std::size_t count);

}  // namespace rgc::workload
