// Builders for the paper's worked-example topologies (Figures 1–4).
//
// All construction uses only model-legal operations: inter-process
// references come into existence exclusively through object propagation
// (§2.1.2), so each remote reference is built by the "courier" pattern —
// propagate a temporary object enclosing the reference, copy the reference
// locally, drop the courier.  settle() then runs acyclic-GC rounds that
// reclaim the couriers, leaving exactly the figure's shape (the figures'
// garbage is cyclic/replicated, which the acyclic protocol provably
// preserves — that is the paper's point).
#pragma once

#include "core/cluster.h"
#include "util/ids.h"

namespace rgc::workload {

/// Creates `from_obj`@`from_proc` -> `to_obj`@`to_proc` through a courier
/// propagation.  `to_obj` must be local to `to_proc`, `from_obj` local to
/// `from_proc`.  Returns the courier's id (it becomes acyclic garbage).
ObjectId make_remote_ref(core::Cluster& cluster, ProcessId from_proc,
                         ObjectId from_obj, ProcessId to_proc,
                         ObjectId to_obj);

/// Runs acyclic collection rounds (LGC + ADGC + quiescence) until the
/// construction couriers are gone or `rounds` is exhausted.
void settle(core::Cluster& cluster, int rounds = 8);

/// Figure 1 — the Union-Rule safety scenario: X replicated on P1 and P2,
/// X@P1 references Z@P3, X@P1 locally unreachable but X@P2 rooted.
/// A replication-blind DGC would reclaim Z; a safe one must not.
struct Figure1 {
  ProcessId p1, p2, p3;
  ObjectId x, z;
};
Figure1 build_figure1(core::Cluster& cluster);

/// Figure 2 — the 4-process replicated garbage cycle:
///   X@P1 ⇢ X'@P2 (prop), X'@P2 -> Y@P4 (ref),
///   Y@P4 ⇢ Y'@P3 (prop), Y'@P3 -> X@P1 (ref).
/// Nothing is rooted: the whole cycle is garbage, invisible to the acyclic
/// protocol, detectable only by the cycle detector.
struct Figure2 {
  ProcessId p1, p2, p3, p4;
  ObjectId x, y;
};
Figure2 build_figure2(core::Cluster& cluster);

/// Figure 3 — six processes, two detection paths:
///   C@P1 -> B@P1 (local), B ⇢ B'@P2, B'@P2 -> E@P3, B'@P2 -> I@P5,
///   E@P3 -> F'@P3 (local), F@P6 ⇢ F'@P3, F@P6 ⇢ F''@P5,
///   F''@P5 -> I@P5 (local), I@P5 ⇢ I'@P4, I'@P4 -> C@P1.
/// All garbage; one detection track aborts, the other closes the cycle.
struct Figure3 {
  ProcessId p1, p2, p3, p4, p5, p6;
  ObjectId c, b, e, f, i;
};
Figure3 build_figure3(core::Cluster& cluster);

/// Figure 4 — the race-condition graph: Figure 2's cycle kept alive by a
/// local root at P1 pointing to X.
struct Figure4 {
  ProcessId p1, p2, p3, p4;
  ObjectId x, y;
};
Figure4 build_figure4(core::Cluster& cluster);

}  // namespace rgc::workload
