#include "workload/random_mutator.h"

#include <array>
#include <deque>
#include <set>
#include <vector>

namespace rgc::workload {
namespace {

/// What one process's mutator can currently touch: local objects reachable
/// from its roots (mutator + in-flight invocation handles) through local
/// bindings, plus the remote targets those objects hold references to.
///
/// Restricting the op stream to this set is not a convenience — it is the
/// RM model's mutator contract (§2.1): a reference can only be assigned,
/// copied, rooted or invoked by an application that *holds* it.  The race
/// barrier's correctness argument (§3.5.2) leans on exactly this: every way
/// a mutator can regain access to a quiescent replica passes through a
/// propagation or invocation, which bumps a counter the detector checks.
struct ReachableState {
  std::vector<ObjectId> local_objects;
  std::vector<ObjectId> remote_targets;
};

ReachableState mutator_view(const rm::Process& proc) {
  ReachableState out;
  std::set<ObjectId> seen_local;
  std::set<ObjectId> seen_remote;
  std::deque<ObjectId> work;

  auto touch = [&](ObjectId id) {
    if (proc.has_replica(id)) {
      if (seen_local.insert(id).second) work.push_back(id);
    } else if (!proc.stubs_for(id).empty()) {
      seen_remote.insert(id);
    }
  };
  for (ObjectId root : proc.heap().roots()) touch(root);
  for (const auto& [obj, ttl] : proc.transient_roots()) touch(obj);

  while (!work.empty()) {
    const ObjectId cur = work.front();
    work.pop_front();
    const rm::Object* obj = proc.heap().find(cur);
    if (obj == nullptr) continue;
    for (const rm::Ref& r : obj->refs) {
      if (r.is_local()) {
        touch(r.target);
      } else {
        seen_remote.insert(r.target);
      }
    }
  }
  out.local_objects.assign(seen_local.begin(), seen_local.end());
  out.remote_targets.assign(seen_remote.begin(), seen_remote.end());
  return out;
}

}  // namespace

RandomMutator::RandomMutator(core::Cluster& cluster, MutatorSpec spec)
    : cluster_(cluster), spec_(spec), rng_(spec.seed) {}

ProcessId RandomMutator::random_process() {
  const auto ids = cluster_.process_ids();
  return ids[rng_.below(ids.size())];
}

ObjectId RandomMutator::random_local(ProcessId p) {
  const auto view = mutator_view(cluster_.process(p));
  if (view.local_objects.empty()) return kNoObject;
  return view.local_objects[rng_.below(view.local_objects.size())];
}

ObjectId RandomMutator::random_known(ProcessId p) {
  const auto view = mutator_view(cluster_.process(p));
  std::vector<ObjectId> pool = view.local_objects;
  pool.insert(pool.end(), view.remote_targets.begin(),
              view.remote_targets.end());
  if (pool.empty()) return kNoObject;
  return pool[rng_.below(pool.size())];
}

void RandomMutator::run(std::size_t ops) {
  for (std::size_t i = 0; i < ops; ++i) step_once();
}

void RandomMutator::step_once() {
  const std::array<std::uint32_t, 9> weights{
      spec_.w_create,  spec_.w_add_ref,  spec_.w_remove_ref,
      spec_.w_add_root, spec_.w_remove_root, spec_.w_propagate,
      spec_.w_invoke,  spec_.w_step,     spec_.w_collect};
  std::uint64_t total = 0;
  for (auto w : weights) total += w;
  std::uint64_t pick = rng_.below(total);
  std::size_t op = 0;
  while (pick >= weights[op]) {
    pick -= weights[op];
    ++op;
  }

  const ProcessId p = random_process();
  rm::Process& proc = cluster_.process(p);
  switch (op) {
    case 0: {  // create
      if (proc.heap().size() >= spec_.max_objects_per_process) return;
      const ObjectId obj = cluster_.new_object(p);
      // Fresh objects start rooted half the time, mirroring allocation
      // into a live variable vs. into a soon-dropped temporary.
      if (rng_.chance(0.5)) cluster_.add_root(p, obj);
      ++executed_;
      return;
    }
    case 1: {  // add_ref: copy a held reference into a held object
      const ObjectId from = random_local(p);
      const ObjectId to = random_known(p);
      if (from == kNoObject || to == kNoObject) return;
      cluster_.add_ref(p, from, to);
      ++executed_;
      return;
    }
    case 2: {  // remove_ref from a held object
      const ObjectId from = random_local(p);
      if (from == kNoObject) return;
      const rm::Object* obj = proc.heap().find(from);
      if (obj == nullptr || obj->refs.empty()) return;
      const ObjectId to = obj->refs[rng_.below(obj->refs.size())].target;
      cluster_.remove_ref(p, from, to);
      ++executed_;
      return;
    }
    case 3: {  // add_root: store a held reference into a global
      const ObjectId target = random_known(p);
      if (target == kNoObject) return;
      cluster_.add_root(p, target);
      ++executed_;
      return;
    }
    case 4: {  // remove_root
      const auto& roots = proc.heap().roots();
      if (roots.empty()) return;
      auto it = roots.begin();
      std::advance(it, static_cast<long>(rng_.below(roots.size())));
      cluster_.remove_root(p, *it);
      ++executed_;
      return;
    }
    case 5: {  // propagate a held replica
      if (cluster_.process_count() < 2) return;
      const ObjectId obj = random_local(p);
      if (obj == kNoObject) return;
      ProcessId to = random_process();
      if (to == p) return;
      cluster_.propagate(obj, p, to);
      ++executed_;
      return;
    }
    case 6: {  // invoke through a held remote reference
      const auto view = mutator_view(proc);
      std::vector<ObjectId> callable;
      for (ObjectId t : view.remote_targets) {
        if (!proc.stubs_for(t).empty()) callable.push_back(t);
      }
      if (callable.empty()) return;
      cluster_.invoke(p, callable[rng_.below(callable.size())],
                      static_cast<std::uint32_t>(1 + rng_.below(3)));
      ++executed_;
      return;
    }
    case 7:  // network step
      cluster_.step();
      ++executed_;
      return;
    case 8:  // local collection + acyclic round on one process
      cluster_.collect(p);
      ++executed_;
      return;
    default:
      return;
  }
}

}  // namespace rgc::workload
