// Random workload driver for property-based testing.
//
// Applies a stream of model-legal mutator and coherence operations to a
// cluster: object creation, reference assignment/removal, root churn,
// propagation, remote invocation, interleaved with network steps and
// occasional local collections — the adversarial environment §3.5's race
// barrier exists for.  Deterministic per seed.
#pragma once

#include <cstdint>

#include "core/cluster.h"
#include "util/ids.h"
#include "util/rng.h"

namespace rgc::workload {

struct MutatorSpec {
  std::uint64_t seed{42};
  /// Relative weights of the operations.
  std::uint32_t w_create{10};
  std::uint32_t w_add_ref{30};
  std::uint32_t w_remove_ref{15};
  std::uint32_t w_add_root{8};
  std::uint32_t w_remove_root{8};
  std::uint32_t w_propagate{15};
  std::uint32_t w_invoke{6};
  std::uint32_t w_step{20};
  std::uint32_t w_collect{4};
  /// Soft cap on objects per process (creation is skipped beyond it).
  std::size_t max_objects_per_process{200};
};

class RandomMutator {
 public:
  RandomMutator(core::Cluster& cluster, MutatorSpec spec);

  /// Executes `ops` operation attempts (illegal picks are skipped).
  void run(std::size_t ops);

  /// One operation attempt.
  void step_once();

  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

 private:
  ProcessId random_process();
  /// A random object locally replicated on `p`, or kNoObject.
  ObjectId random_local(ProcessId p);
  /// A random object resolvable on `p` (replica or stub), or kNoObject.
  ObjectId random_known(ProcessId p);

  core::Cluster& cluster_;
  MutatorSpec spec_;
  util::Rng rng_;
  std::uint64_t executed_{0};
};

}  // namespace rgc::workload
