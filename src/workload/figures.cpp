#include "workload/figures.h"

namespace rgc::workload {

ObjectId make_remote_ref(core::Cluster& cluster, ProcessId from_proc,
                         ObjectId from_obj, ProcessId to_proc,
                         ObjectId to_obj) {
  const ObjectId courier = cluster.new_object(to_proc);
  cluster.add_root(to_proc, courier);
  cluster.add_ref(to_proc, courier, to_obj);
  cluster.propagate(courier, to_proc, from_proc);
  cluster.run_until_quiescent();
  // The courier's replica imported the reference, so from_proc now holds a
  // stub for to_obj and may copy the reference (§2.1.2).
  cluster.add_ref(from_proc, from_obj, to_obj);
  cluster.remove_root(to_proc, courier);
  return courier;
}

void settle(core::Cluster& cluster, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    cluster.collect_all();
    cluster.run_until_quiescent();
  }
}

Figure1 build_figure1(core::Cluster& cluster) {
  Figure1 f{};
  f.p1 = cluster.add_process();
  f.p2 = cluster.add_process();
  f.p3 = cluster.add_process();

  f.x = cluster.new_object(f.p1);
  f.z = cluster.new_object(f.p3);
  cluster.add_root(f.p1, f.x);  // construction root, removed below

  // X replicated onto P2 before it acquires references, matching the
  // figure (only X@P1 holds the reference to Z).
  cluster.propagate(f.x, f.p1, f.p2);
  cluster.run_until_quiescent();
  make_remote_ref(cluster, f.p1, f.x, f.p3, f.z);

  cluster.add_root(f.p2, f.x);    // "X_P2 is locally reachable"
  cluster.remove_root(f.p1, f.x); // "X_P1 ... is not locally reachable"
  settle(cluster);
  return f;
}

Figure2 build_figure2(core::Cluster& cluster) {
  Figure2 f{};
  f.p1 = cluster.add_process();
  f.p2 = cluster.add_process();
  f.p3 = cluster.add_process();
  f.p4 = cluster.add_process();

  f.x = cluster.new_object(f.p1);
  f.y = cluster.new_object(f.p4);
  cluster.add_root(f.p1, f.x);
  cluster.add_root(f.p4, f.y);

  // Propagate while ref-less so the replicas match the figure exactly:
  // only X'@P2 references Y, only Y'@P3 references X.
  cluster.propagate(f.x, f.p1, f.p2);
  cluster.propagate(f.y, f.p4, f.p3);
  cluster.run_until_quiescent();

  make_remote_ref(cluster, f.p2, f.x, f.p4, f.y);  // X'@P2 -> Y@P4
  make_remote_ref(cluster, f.p3, f.y, f.p1, f.x);  // Y'@P3 -> X@P1

  cluster.remove_root(f.p1, f.x);
  cluster.remove_root(f.p4, f.y);
  settle(cluster);
  return f;
}

Figure3 build_figure3(core::Cluster& cluster) {
  Figure3 f{};
  f.p1 = cluster.add_process();
  f.p2 = cluster.add_process();
  f.p3 = cluster.add_process();
  f.p4 = cluster.add_process();
  f.p5 = cluster.add_process();
  f.p6 = cluster.add_process();

  f.c = cluster.new_object(f.p1);
  f.b = cluster.new_object(f.p1);
  f.e = cluster.new_object(f.p3);
  f.f = cluster.new_object(f.p6);
  f.i = cluster.new_object(f.p5);

  cluster.add_root(f.p1, f.c);
  cluster.add_root(f.p3, f.e);
  cluster.add_root(f.p6, f.f);
  cluster.add_root(f.p5, f.i);

  cluster.add_ref(f.p1, f.c, f.b);  // C -> B, local on P1

  cluster.propagate(f.b, f.p1, f.p2);  // B ⇢ B'@P2 (ref-less replica)
  cluster.propagate(f.f, f.p6, f.p3);  // F ⇢ F'@P3
  cluster.propagate(f.f, f.p6, f.p5);  // F ⇢ F''@P5
  cluster.run_until_quiescent();

  cluster.add_ref(f.p3, f.e, f.f);  // E -> F'  (local on P3)
  cluster.add_ref(f.p5, f.f, f.i);  // F'' -> I (local on P5; replicas diverge)

  cluster.propagate(f.i, f.p5, f.p4);  // I ⇢ I'@P4 (still ref-less)
  cluster.run_until_quiescent();

  make_remote_ref(cluster, f.p2, f.b, f.p3, f.e);  // B'@P2 -> E@P3
  make_remote_ref(cluster, f.p2, f.b, f.p5, f.i);  // B'@P2 -> I@P5
  make_remote_ref(cluster, f.p4, f.i, f.p1, f.c);  // I'@P4 -> C@P1

  cluster.remove_root(f.p1, f.c);
  cluster.remove_root(f.p3, f.e);
  cluster.remove_root(f.p6, f.f);
  cluster.remove_root(f.p5, f.i);
  settle(cluster);
  return f;
}

Figure4 build_figure4(core::Cluster& cluster) {
  const Figure2 base = build_figure2(cluster);
  Figure4 f{base.p1, base.p2, base.p3, base.p4, base.x, base.y};
  // The cycle is *live*: P1's mutator still holds X in a global.
  cluster.add_root(f.p1, f.x);
  settle(cluster);
  return f;
}

}  // namespace rgc::workload
