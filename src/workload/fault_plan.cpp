#include "workload/fault_plan.h"

#include <algorithm>

#include "util/log.h"
#include "util/rng.h"

namespace rgc::workload {

std::string to_string(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::kKill:
      return "kill";
    case FaultEvent::Kind::kRestart:
      return "restart";
    case FaultEvent::Kind::kPartition:
      return "partition";
    case FaultEvent::Kind::kHeal:
      return "heal";
    case FaultEvent::Kind::kPersist:
      return "persist";
  }
  return "?";
}

FaultPlan FaultPlan::random(const std::vector<ProcessId>& pids,
                            const FaultPlanSpec& spec) {
  FaultPlan plan;
  if (pids.empty()) return plan;
  util::Rng rng{spec.seed};
  const std::uint64_t last = spec.start + spec.horizon;

  // Periodic persist-alls, so kills have fresh images to restart from.
  if (spec.persist_period != 0) {
    for (std::uint64_t at = spec.start; at <= last; at += spec.persist_period) {
      plan.events.push_back(
          FaultEvent{at, FaultEvent::Kind::kPersist, kNoProcess, {}});
    }
  }

  // Crash/restart pairs.  Victims are drawn per event (the same pid may be
  // hit twice — the runner's guards make that legal); downtime is bounded
  // so the plan always brings everyone back before the horizon ends.
  for (std::size_t i = 0; i < spec.kills; ++i) {
    const std::uint64_t at =
        spec.start + rng.below(spec.horizon > 0 ? spec.horizon : 1);
    const std::uint64_t down = static_cast<std::uint64_t>(rng.range(
        static_cast<std::int64_t>(spec.min_downtime),
        static_cast<std::int64_t>(
            std::max(spec.min_downtime, spec.max_downtime))));
    const ProcessId victim = pids[rng.below(pids.size())];
    plan.events.push_back(FaultEvent{at, FaultEvent::Kind::kKill, victim, {}});
    plan.events.push_back(
        FaultEvent{at + down, FaultEvent::Kind::kRestart, victim, {}});
  }

  // Partition episodes: a random nonempty/nontotal split, healed later.
  for (std::size_t i = 0; i < spec.partitions && pids.size() >= 2; ++i) {
    const std::uint64_t at =
        spec.start + rng.below(spec.horizon > 0 ? spec.horizon : 1);
    std::vector<ProcessId> left;
    std::vector<ProcessId> right;
    for (ProcessId pid : pids) {
      (rng.chance(0.5) ? left : right).push_back(pid);
    }
    if (left.empty()) {
      left.push_back(right.back());
      right.pop_back();
    }
    if (right.empty()) {
      right.push_back(left.back());
      left.pop_back();
    }
    FaultEvent part{at, FaultEvent::Kind::kPartition, kNoProcess, {}};
    part.groups = {left, right};
    plan.events.push_back(std::move(part));
    plan.events.push_back(FaultEvent{at + spec.partition_width,
                                     FaultEvent::Kind::kHeal, kNoProcess, {}});
  }

  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at_step < b.at_step;
                   });
  return plan;
}

FaultPlanRunner::FaultPlanRunner(core::Cluster& cluster, FaultPlan plan)
    : cluster_(cluster), plan_(std::move(plan)) {}

std::size_t FaultPlanRunner::poll() {
  std::size_t fired = 0;
  while (next_ < plan_.events.size() &&
         plan_.events[next_].at_step <= cluster_.now()) {
    fired += apply(plan_.events[next_]) ? 1 : 0;
    ++next_;
  }
  return fired;
}

void FaultPlanRunner::finish() {
  while (next_ < plan_.events.size()) {
    apply(plan_.events[next_]);
    ++next_;
  }
  if (cluster_.partitioned()) cluster_.heal();
  for (ProcessId pid : cluster_.dead_process_ids()) cluster_.restart(pid);
}

bool FaultPlanRunner::apply(const FaultEvent& event) {
  switch (event.kind) {
    case FaultEvent::Kind::kKill: {
      // State guards keep seeded plans legal whatever the interleaving
      // did, and the safety floor never kills the last live process.
      if (!cluster_.is_alive(event.pid) || cluster_.process_count() <= 1) {
        ++skipped_;
        return false;
      }
      cluster_.kill(event.pid);
      break;
    }
    case FaultEvent::Kind::kRestart: {
      if (cluster_.is_alive(event.pid)) {
        ++skipped_;
        return false;
      }
      cluster_.restart(event.pid);
      break;
    }
    case FaultEvent::Kind::kPartition: {
      if (cluster_.partitioned()) {
        ++skipped_;
        return false;
      }
      cluster_.partition(event.groups);
      break;
    }
    case FaultEvent::Kind::kHeal: {
      if (!cluster_.partitioned()) {
        ++skipped_;
        return false;
      }
      cluster_.heal();
      break;
    }
    case FaultEvent::Kind::kPersist: {
      if (event.pid == kNoProcess) {
        cluster_.persist_all();
      } else if (cluster_.is_alive(event.pid)) {
        cluster_.persist(event.pid);
      } else {
        ++skipped_;
        return false;
      }
      break;
    }
  }
  ++applied_;
  RGC_DEBUG("fault_plan: applied ", to_string(event.kind), " at step ",
            cluster_.now());
  return true;
}

}  // namespace rgc::workload
