#include "workload/mesh.h"

#include <stdexcept>

#include "workload/figures.h"

namespace rgc::workload {

Mesh build_mesh(core::Cluster& cluster, const MeshSpec& spec) {
  if (spec.processes < 2) {
    throw std::invalid_argument("mesh needs at least two processes");
  }
  Mesh mesh;
  for (std::size_t i = 0; i < spec.processes; ++i) {
    mesh.procs.push_back(cluster.add_process());
  }

  const std::size_t laps = (spec.dependencies + 1) / 2;
  const std::size_t hops = laps * spec.processes;

  mesh.head = cluster.new_object(mesh.procs[0]);
  mesh.head_process = mesh.procs[0];
  mesh.strand.push_back(mesh.head);
  cluster.add_root(mesh.head_process, mesh.head);  // construction root

  ObjectId current = mesh.head;
  std::size_t at = 0;  // index into procs
  for (std::size_t hop = 0; hop < hops; ++hop) {
    const ProcessId here = mesh.procs[at];
    const std::size_t next_at = (at + 1) % spec.processes;
    const ProcessId next = mesh.procs[next_at];

    // Propagation edge of the triangle.
    cluster.propagate(current, here, next);
    ++mesh.total_links;
    // Bystander replicas (replication factor without reference fan-in).
    for (std::size_t b = 1; b <= spec.extra_replicas; ++b) {
      const ProcessId bystander =
          mesh.procs[(at + 1 + b) % spec.processes];
      if (bystander == here) continue;
      cluster.propagate(current, here, bystander);
      ++mesh.total_links;
    }
    cluster.run_until_quiescent();

    const ObjectId target = cluster.new_object(next);
    mesh.strand.push_back(target);

    // Local edge X@next -> target ...
    cluster.add_ref(next, current, target);
    // ... and the remote reference edge X@here -> target.
    make_remote_ref(cluster, here, current, next, target);
    ++mesh.total_links;

    current = target;
    at = next_at;
  }

  // Close the spanning cycle with a local edge back to the head.  (Closing
  // with a remote reference would degenerate on small rings: the closing
  // process may already hold a replica of the head, which resolves the
  // imported reference locally and leaves no stub–scion pair.)
  cluster.add_ref(mesh.procs[at], current, mesh.head);

  cluster.remove_root(mesh.head_process, mesh.head);
  settle(cluster);
  return mesh;
}

}  // namespace rgc::workload
