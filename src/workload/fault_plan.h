// Seeded chaos schedules for the fault-tolerance layer (docs/FAULTS.md).
//
// A FaultPlan is a deterministic, step-stamped list of fault events —
// crash, restart-from-snapshot, partition, heal, persist — generated once
// from a seed and then *applied* by a FaultPlanRunner as the simulation
// advances: the driver interleaves RandomMutator operations with
// runner.poll(), and every event fires exactly when the cluster clock
// reaches its stamp.  Same seed, same plan, same run.
//
// Writing a plan by hand is just building the events vector; see
// tests/recovery_test.cpp for hand-written plans and tests/chaos_test.cpp
// for random ones.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "util/ids.h"

namespace rgc::workload {

struct FaultEvent {
  enum class Kind : std::uint8_t { kKill, kRestart, kPartition, kHeal, kPersist };

  /// Cluster step the event fires at (first step >= this, in poll order).
  std::uint64_t at_step{0};
  Kind kind{Kind::kKill};
  /// Target for kill/restart/persist; kNoProcess on persist means "all".
  ProcessId pid{kNoProcess};
  /// Partition groups (kPartition only).  Pids absent from every group are
  /// unaffected by the mask.
  std::vector<std::vector<ProcessId>> groups;
};

[[nodiscard]] std::string to_string(FaultEvent::Kind kind);

struct FaultPlanSpec {
  std::uint64_t seed{1};
  /// First step any fault may fire at (lets the workload build real state
  /// first) and the horizon faults are scheduled within.
  std::uint64_t start{16};
  std::uint64_t horizon{400};
  /// Crash count; each kill is paired with a restart after a random
  /// downtime in [min_downtime, max_downtime] steps.
  std::size_t kills{3};
  std::uint64_t min_downtime{8};
  std::uint64_t max_downtime{64};
  /// Partition episodes; each heals partition_width steps later.
  std::size_t partitions{1};
  std::uint64_t partition_width{48};
  /// Cadence of persist-all events (0 disables; kills then restart from
  /// whatever image exists, possibly none).  Concurrent-death pressure is
  /// bounded by the runner's floor (the last live process is never killed).
  std::uint64_t persist_period{32};
};

struct FaultPlan {
  std::vector<FaultEvent> events;

  /// Deterministically generates a plan over `pids` from `spec.seed`:
  /// periodic persist-alls, `kills` crash/restart pairs, and `partitions`
  /// partition/heal pairs, all stamped within [start, start + horizon] and
  /// sorted by step (ties fire in emission order).
  [[nodiscard]] static FaultPlan random(const std::vector<ProcessId>& pids,
                                       const FaultPlanSpec& spec);
};

/// Applies a FaultPlan against a live cluster.  poll() fires every event
/// whose stamp has been reached, with state guards making plans robust to
/// drift (kill only a live pid, restart only a dead one, partition only an
/// unpartitioned net, heal only a partitioned one) and a safety floor that
/// never kills the last live process.  Skipped events are counted, not
/// errors — a seeded plan stays applicable whatever the interleaving did.
class FaultPlanRunner {
 public:
  FaultPlanRunner(core::Cluster& cluster, FaultPlan plan);

  /// Fires all events due at the cluster's current step.  Returns the
  /// number applied (not skipped).
  std::size_t poll();

  /// True once every event has been consumed.
  [[nodiscard]] bool done() const noexcept { return next_ >= plan_.events.size(); }

  /// Drains the schedule: applies every remaining event regardless of
  /// stamp, heals any partition, and restarts every dead process — the
  /// "end of chaos" step before asserting convergence.
  void finish();

  [[nodiscard]] std::size_t applied() const noexcept { return applied_; }
  [[nodiscard]] std::size_t skipped() const noexcept { return skipped_; }

 private:
  bool apply(const FaultEvent& event);

  core::Cluster& cluster_;
  FaultPlan plan_;
  std::size_t next_{0};
  std::size_t applied_{0};
  std::size_t skipped_{0};
};

}  // namespace rgc::workload
