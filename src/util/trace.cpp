#include "util/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <ostream>

namespace rgc::util {
namespace {

thread_local std::uint64_t t_sim_now = 0;
thread_local ProcessId t_current_process = kNoProcess;

/// Category = name up to the first dot ("cdm.forward" -> "cdm").
std::string_view category_of(const char* name) {
  const std::string_view n{name};
  const auto dot = n.find('.');
  return dot == std::string_view::npos ? n : n.substr(0, dot);
}

/// Chrome trace timestamps: sim time scaled so one step is 1000 ticks —
/// wide enough that several protocol instants within a step stay readable.
constexpr std::uint64_t kTicksPerStep = 1000;

/// Synthetic Chrome pid for cluster-global events (no process context).
constexpr std::uint32_t kGlobalPid = 1000000;

std::uint32_t chrome_pid(const TraceEvent& ev) {
  return ev.process == kNoTraceProcess ? kGlobalPid : ev.process;
}

void write_args_object(std::ostream& os, const TraceEvent& ev) {
  os << "{";
  bool first = true;
  for (const TraceArg& a : ev.args) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(a.key) << "\":";
    if (a.numeric) {
      os << a.value;
    } else {
      os << "\"" << json_escape(a.value) << "\"";
    }
  }
  os << "}";
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

Trace& Trace::instance() noexcept {
  static Trace trace;
  return trace;
}

void Trace::set_sim_now(std::uint64_t step) noexcept { t_sim_now = step; }
std::uint64_t Trace::sim_now() noexcept { return t_sim_now; }
void Trace::set_current_process(ProcessId pid) noexcept {
  t_current_process = pid;
}
void Trace::clear_current_process() noexcept { t_current_process = kNoProcess; }
ProcessId Trace::current_process() noexcept { return t_current_process; }

std::uint64_t Trace::wall_us() noexcept {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(clock::now() -
                                                            start)
          .count());
}

std::uint64_t Trace::instant(const char* name, ProcessId pid,
                             std::uint64_t parent, bool with_id,
                             std::vector<TraceArg> args) {
  if (sink_ == nullptr) return 0;
  TraceEvent ev;
  ev.type = TraceEventType::kInstant;
  ev.name = name;
  ev.sim_step = sim_now();
  ev.wall_us = wall_us();
  ev.process = pid == kNoProcess ? kNoTraceProcess : raw(pid);
  ev.parent = parent;
  if (with_id) ev.id = next_id();
  ev.args = std::move(args);
  const std::uint64_t id = ev.id;
  sink_->push(std::move(ev));
  return id;
}

void Trace::counter(const char* name, ProcessId pid, std::uint64_t value) {
  if (sink_ == nullptr) return;
  TraceEvent ev;
  ev.type = TraceEventType::kCounter;
  ev.name = name;
  ev.sim_step = sim_now();
  ev.wall_us = wall_us();
  ev.process = pid == kNoProcess ? kNoTraceProcess : raw(pid);
  ev.value = value;
  sink_->push(std::move(ev));
}

void Trace::span(const char* name, ProcessId pid, std::uint64_t begin_step,
                 std::uint64_t begin_us, std::vector<TraceArg> args) {
  if (sink_ == nullptr) return;
  TraceEvent ev;
  ev.type = TraceEventType::kSpan;
  ev.name = name;
  ev.sim_step = begin_step;
  ev.wall_us = begin_us;
  ev.process = pid == kNoProcess ? kNoTraceProcess : raw(pid);
  const std::uint64_t end_step = sim_now();
  const std::uint64_t end_us = wall_us();
  ev.dur_steps = end_step >= begin_step ? end_step - begin_step : 0;
  ev.dur_us = end_us >= begin_us ? end_us - begin_us : 0;
  ev.args = std::move(args);
  sink_->push(std::move(ev));
}

void Timeline::write_jsonl(std::ostream& os) const {
  for (const TraceEvent& ev : events_) {
    const char* type = ev.type == TraceEventType::kSpan      ? "span"
                       : ev.type == TraceEventType::kCounter ? "counter"
                                                             : "instant";
    os << "{\"type\":\"" << type << "\",\"name\":\"" << json_escape(ev.name)
       << "\",\"step\":" << ev.sim_step << ",\"wall_us\":" << ev.wall_us;
    if (ev.process != kNoTraceProcess) os << ",\"proc\":" << ev.process;
    if (ev.id != 0) os << ",\"id\":" << ev.id;
    if (ev.parent != 0) os << ",\"parent\":" << ev.parent;
    if (ev.type == TraceEventType::kSpan) {
      os << ",\"dur_steps\":" << ev.dur_steps << ",\"dur_us\":" << ev.dur_us;
    }
    if (ev.type == TraceEventType::kCounter) os << ",\"value\":" << ev.value;
    if (!ev.args.empty()) {
      os << ",\"args\":";
      write_args_object(os, ev);
    }
    os << "}\n";
  }
}

void Timeline::write_chrome_trace(std::ostream& os) const {
  os << "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };

  // Process-name metadata so Perfetto labels tracks P0, P1, ... instead of
  // bare numbers.
  std::map<std::uint32_t, bool> pids;
  for (const TraceEvent& ev : events_) pids[chrome_pid(ev)] = true;
  for (const auto& [pid, unused] : pids) {
    sep();
    os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\""
       << (pid == kGlobalPid ? std::string("cluster")
                             : "P" + std::to_string(pid))
       << "\"}}";
  }

  // Lineage flow arrows need slice endpoints to bind to, so instants are
  // exported as thin slices (half a step wide).
  std::map<std::uint64_t, const TraceEvent*> by_id;
  for (const TraceEvent& ev : events_) {
    if (ev.id != 0) by_id[ev.id] = &ev;
  }

  for (const TraceEvent& ev : events_) {
    const std::uint32_t pid = chrome_pid(ev);
    const std::uint64_t ts = ev.sim_step * kTicksPerStep;
    sep();
    switch (ev.type) {
      case TraceEventType::kSpan:
        os << "{\"ph\":\"X\",\"name\":\"" << json_escape(ev.name)
           << "\",\"cat\":\"" << json_escape(category_of(ev.name))
           << "\",\"ts\":" << ts
           << ",\"dur\":" << std::max<std::uint64_t>(ev.dur_steps * kTicksPerStep, 1)
           << ",\"pid\":" << pid << ",\"tid\":0,\"args\":";
        write_args_object(os, ev);
        os << "}";
        break;
      case TraceEventType::kInstant:
        os << "{\"ph\":\"X\",\"name\":\"" << json_escape(ev.name)
           << "\",\"cat\":\"" << json_escape(category_of(ev.name))
           << "\",\"ts\":" << ts << ",\"dur\":" << kTicksPerStep / 2
           << ",\"pid\":" << pid << ",\"tid\":0,\"args\":";
        write_args_object(os, ev);
        os << "}";
        break;
      case TraceEventType::kCounter:
        os << "{\"ph\":\"C\",\"name\":\"" << json_escape(ev.name)
           << "\",\"ts\":" << ts << ",\"pid\":" << pid
           << ",\"tid\":0,\"args\":{\"value\":" << ev.value << "}}";
        break;
    }

    // One flow arrow per causal edge: start at the parent event's slice,
    // finish at this one's.  The child's lineage id (unique) names the
    // flow; a child without an own id borrows a synthetic edge id derived
    // from its position, which stays unique because it is one-shot.
    if (ev.parent != 0) {
      auto it = by_id.find(ev.parent);
      if (it != by_id.end()) {
        const TraceEvent& p = *it->second;
        const std::uint64_t flow_id =
            ev.id != 0 ? ev.id : (ev.parent << 20) + (&ev - events_.data());
        sep();
        os << "{\"ph\":\"s\",\"name\":\"lineage\",\"cat\":\"lineage\",\"id\":"
           << flow_id << ",\"ts\":" << p.sim_step * kTicksPerStep + 1
           << ",\"pid\":" << chrome_pid(p) << ",\"tid\":0}";
        sep();
        os << "{\"ph\":\"f\",\"bp\":\"e\",\"name\":\"lineage\",\"cat\":"
           << "\"lineage\",\"id\":" << flow_id << ",\"ts\":" << ts + 1
           << ",\"pid\":" << pid << ",\"tid\":0}";
      }
    }
  }
  os << "\n]}\n";
}

}  // namespace rgc::util
