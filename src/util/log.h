// Minimal leveled logger.
//
// Tests run with logging off by default; examples raise the level to let a
// reader watch protocol messages flow.  The logger is deliberately global
// and lock-free (the simulator is single-threaded by design: asynchrony is
// modelled by the step-driven network, not by OS threads).
#pragma once

#include <sstream>
#include <string>

namespace rgc::util {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kOff = 4 };

/// Sets the global threshold; messages below it are discarded.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Emits one line to stderr with a level tag. Used via the macros below.
void log_line(LogLevel level, const std::string& msg);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}
}  // namespace detail

}  // namespace rgc::util

#define RGC_LOG(level, ...)                                             \
  do {                                                                  \
    if ((level) >= ::rgc::util::log_level())                            \
      ::rgc::util::log_line((level), ::rgc::util::detail::concat(__VA_ARGS__)); \
  } while (false)

#define RGC_TRACE(...) RGC_LOG(::rgc::util::LogLevel::kTrace, __VA_ARGS__)
#define RGC_DEBUG(...) RGC_LOG(::rgc::util::LogLevel::kDebug, __VA_ARGS__)
#define RGC_INFO(...) RGC_LOG(::rgc::util::LogLevel::kInfo, __VA_ARGS__)
#define RGC_WARN(...) RGC_LOG(::rgc::util::LogLevel::kWarn, __VA_ARGS__)
