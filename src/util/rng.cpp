#include "util/rng.h"

namespace rgc::util {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

// SplitMix64: seeds the xoshiro state from a single 64-bit value.
constexpr std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  // Lemire's multiply-shift rejection method: unbiased and branch-light.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::unit() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) noexcept { return unit() < p; }

Rng Rng::fork() noexcept { return Rng{next()}; }

}  // namespace rgc::util
