#include "util/thread_pool.h"

namespace rgc::util {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t workers = threads > 1 ? threads - 1 : 0;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (workers_.empty() || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_size_ = n;
    next_index_ = 0;
    checked_in_ = 0;
    body_ = &body;
    first_error_ = nullptr;
    ++generation_;
  }
  wake_.notify_all();
  drain();
  std::unique_lock<std::mutex> lock(mutex_);
  done_.wait(lock, [this] { return checked_in_ == workers_.size() + 1; });
  body_ = nullptr;
  if (first_error_) {
    auto err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] { return stop_ || generation_ != seen_generation; });
      if (stop_) return;
      seen_generation = generation_;
    }
    drain();
  }
}

void ThreadPool::drain() {
  for (;;) {
    std::size_t index;
    const std::function<void(std::size_t)>* body;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (next_index_ >= job_size_) break;
      index = next_index_++;
      body = body_;
    }
    try {
      (*body)(index);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
      next_index_ = job_size_;  // abort remaining indices
    }
  }
  bool all_done = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    all_done = ++checked_in_ == workers_.size() + 1;
  }
  if (all_done) done_.notify_all();
}

}  // namespace rgc::util
