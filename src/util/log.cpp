#include "util/log.h"

#include <cstdio>

#include "util/trace.h"

namespace rgc::util {
namespace {

LogLevel g_level = LogLevel::kOff;

const char* tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level = level; }
LogLevel log_level() noexcept { return g_level; }

void log_line(LogLevel level, const std::string& msg) {
  // Attribution context (set by the cluster/network step loop): sim step
  // and the process whose handler is running, so interleaved protocol
  // logs can be told apart.
  const ProcessId pid = Trace::current_process();
  if (pid == kNoProcess) {
    std::fprintf(stderr, "[%s][step %llu] %s\n", tag(level),
                 static_cast<unsigned long long>(Trace::sim_now()),
                 msg.c_str());
  } else {
    std::fprintf(stderr, "[%s][step %llu][P%u] %s\n", tag(level),
                 static_cast<unsigned long long>(Trace::sim_now()), raw(pid),
                 msg.c_str());
  }
}

}  // namespace rgc::util
