#include "util/log.h"

#include <cstdio>

namespace rgc::util {
namespace {

LogLevel g_level = LogLevel::kOff;

const char* tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level = level; }
LogLevel log_level() noexcept { return g_level; }

void log_line(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[%s] %s\n", tag(level), msg.c_str());
}

}  // namespace rgc::util
