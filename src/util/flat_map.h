// A sorted-vector map for bulk-built, read-mostly results.
//
// The LGC's reachability classification is produced once per collection by
// an in-order sweep over the (ordered) heap and stub tables, then only
// looked up and iterated.  A node-based std::map pays one allocation per
// entry for that pattern — ~100k allocations per collection on the Figure
// 6/7 heaps; a sorted vector pays O(1) allocations total and halves the
// lookup constant.  Construction is append-only with strictly increasing
// keys (checked by assert), which the in-order producers guarantee.
#pragma once

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>
#include <vector>

namespace rgc::util {

template <typename K, typename V>
class FlatMap {
 public:
  using value_type = std::pair<K, V>;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  FlatMap() = default;

  void reserve(std::size_t n) { items_.reserve(n); }

  /// Appends an entry; `key` must be strictly greater than every key
  /// already present (in-order bulk construction).
  void append(const K& key, V value) {
    assert(items_.empty() || items_.back().first < key);
    items_.emplace_back(key, std::move(value));
  }

  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] const_iterator begin() const noexcept { return items_.begin(); }
  [[nodiscard]] const_iterator end() const noexcept { return items_.end(); }

  [[nodiscard]] const_iterator find(const K& key) const {
    auto it = std::lower_bound(
        items_.begin(), items_.end(), key,
        [](const value_type& e, const K& k) { return e.first < k; });
    return it != items_.end() && it->first == key ? it : items_.end();
  }

  [[nodiscard]] bool contains(const K& key) const {
    return find(key) != items_.end();
  }

  /// Value lookup; throws std::out_of_range when absent (std::map::at
  /// compatibility for tests and cold paths).
  [[nodiscard]] const V& at(const K& key) const {
    auto it = find(key);
    if (it == items_.end()) throw std::out_of_range("FlatMap::at: no such key");
    return it->second;
  }

  friend bool operator==(const FlatMap&, const FlatMap&) = default;

 private:
  std::vector<value_type> items_;
};

}  // namespace rgc::util
