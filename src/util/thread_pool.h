// Fixed-size worker pool for the cluster's phase-split GC parallelism.
//
// The simulator's protocol logic stays single-threaded (see util/log.h);
// the pool only ever runs *read-only, per-process* phases — LGC marking and
// snapshot summarization — where process i is touched by exactly one task
// and tasks share nothing mutable (core/cluster.cpp documents the phase
// rules, docs/PERFORMANCE.md the reasoning).  Results land in caller-owned
// slots indexed by task, so the outcome is independent of scheduling order:
// a run with N workers is bit-for-bit identical to a serial run.
//
// parallel_for(n, body) runs body(0..n-1) across the workers plus the
// calling thread and blocks until every index completed.  Tasks must not
// call back into the pool (no nesting).  The first exception thrown by any
// task is rethrown on the caller after the barrier.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rgc::util {

class ThreadPool {
 public:
  /// `threads` is the total concurrency including the calling thread, so a
  /// pool built with threads=4 spawns 3 workers.  threads <= 1 spawns none
  /// and parallel_for degenerates to a plain loop.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency (workers + caller).
  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size() + 1;
  }

  /// Runs body(i) for every i in [0, n), distributing indices over the
  /// workers and the calling thread; returns when all completed.  Indices
  /// are claimed atomically, so each runs exactly once (on an unspecified
  /// thread).  Not reentrant.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();
  /// Claims and runs indices of the current job until none remain; returns
  /// the number of participants still draining (for the completion wait).
  void drain();

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable wake_;   // workers wait for a new job generation
  std::condition_variable done_;   // caller waits for participants to check in
  bool stop_{false};
  std::uint64_t generation_{0};    // bumped per parallel_for call
  std::size_t job_size_{0};
  std::size_t next_index_{0};      // guarded by mutex_ (claimed in chunks of 1)
  std::size_t checked_in_{0};      // participants done draining this generation
  const std::function<void(std::size_t)>* body_{nullptr};
  std::exception_ptr first_error_;
};

}  // namespace rgc::util
