// Deterministic pseudo-random number generation.
//
// The whole world (network jitter, workload generation, mutator schedules)
// derives from one seed, so every test and benchmark run is reproducible.
// xoshiro256** is used instead of std::mt19937 because its state is small
// enough to copy into forked sub-generators cheaply and its output is
// identical across standard-library implementations.
#pragma once

#include <cstdint>

namespace rgc::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  /// Uniform 64-bit value.
  std::uint64_t next() noexcept;

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double unit() noexcept;

  /// Bernoulli trial.
  bool chance(double p) noexcept;

  /// Derives an independent generator; used to give each process its own
  /// stream so adding randomness in one place does not shift another's.
  Rng fork() noexcept;

 private:
  std::uint64_t s_[4];
};

}  // namespace rgc::util
