// A small sorted-vector set used for the CDM algebra.
//
// CDM source/target sets are tiny (tens of replicas) and are unioned,
// differenced and compared constantly while a detection walks the graph, so
// a contiguous representation beats node-based sets both in speed and in
// serialized-size accounting (the network simulator charges message size by
// element count).
#pragma once

#include <algorithm>
#include <cassert>
#include <initializer_list>
#include <vector>

namespace rgc::util {

template <typename T>
class FlatSet {
 public:
  using value_type = T;
  using const_iterator = typename std::vector<T>::const_iterator;

  FlatSet() = default;
  FlatSet(std::initializer_list<T> xs) : items_(xs) { normalize(); }
  explicit FlatSet(std::vector<T> xs) : items_(std::move(xs)) { normalize(); }

  /// Adopts `xs` as the backing store, trusting the caller that it is
  /// already sorted and duplicate-free (checked in debug builds).  Lets
  /// producers whose output is naturally ordered — the snapshot
  /// summarizer's bitset sweeps emit in key order — skip the sort+dedup
  /// normalization pass.
  [[nodiscard]] static FlatSet from_sorted_unique(std::vector<T> xs) {
    assert(std::is_sorted(xs.begin(), xs.end()));
    assert(std::adjacent_find(xs.begin(), xs.end()) == xs.end());
    FlatSet out;
    out.items_ = std::move(xs);
    return out;
  }

  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] const_iterator begin() const noexcept { return items_.begin(); }
  [[nodiscard]] const_iterator end() const noexcept { return items_.end(); }
  [[nodiscard]] const std::vector<T>& items() const noexcept { return items_; }

  [[nodiscard]] bool contains(const T& x) const {
    return std::binary_search(items_.begin(), items_.end(), x);
  }

  /// Inserts x; returns true when x was not already present.
  bool insert(const T& x) {
    auto it = std::lower_bound(items_.begin(), items_.end(), x);
    if (it != items_.end() && *it == x) return false;
    items_.insert(it, x);
    return true;
  }

  bool erase(const T& x) {
    auto it = std::lower_bound(items_.begin(), items_.end(), x);
    if (it == items_.end() || *it != x) return false;
    items_.erase(it);
    return true;
  }

  void clear() noexcept { items_.clear(); }

  /// In-place union.
  void merge(const FlatSet& other) {
    std::vector<T> out;
    out.reserve(items_.size() + other.items_.size());
    std::set_union(items_.begin(), items_.end(), other.items_.begin(),
                   other.items_.end(), std::back_inserter(out));
    items_ = std::move(out);
  }

  /// this \ other.
  [[nodiscard]] FlatSet difference(const FlatSet& other) const {
    FlatSet out;
    std::set_difference(items_.begin(), items_.end(), other.items_.begin(),
                        other.items_.end(), std::back_inserter(out.items_));
    return out;
  }

  /// this ∩ other.
  [[nodiscard]] FlatSet intersect(const FlatSet& other) const {
    FlatSet out;
    std::set_intersection(items_.begin(), items_.end(), other.items_.begin(),
                          other.items_.end(), std::back_inserter(out.items_));
    return out;
  }

  [[nodiscard]] bool subset_of(const FlatSet& other) const {
    return std::includes(other.items_.begin(), other.items_.end(),
                         items_.begin(), items_.end());
  }

  friend bool operator==(const FlatSet&, const FlatSet&) = default;

 private:
  void normalize() {
    std::sort(items_.begin(), items_.end());
    items_.erase(std::unique(items_.begin(), items_.end()), items_.end());
  }

  std::vector<T> items_;
};

}  // namespace rgc::util
