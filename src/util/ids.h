// Strong identifier types shared by every subsystem.
//
// A logical object in the Replicated Memory (RM) model has one global
// ObjectId; each copy of it living on a particular process is a Replica
// (ObjectId + ProcessId).  The cycle-detection algebra of the paper
// manipulates replicas, so Replica is ordered and hashable.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace rgc {

/// Identifies one participating process (a physical node of the store).
enum class ProcessId : std::uint32_t {};

/// Identifies one logical object (a vertex of the distributed graph).
/// Replicas of the same object on different processes share the ObjectId.
enum class ObjectId : std::uint64_t {};

inline constexpr ProcessId kNoProcess{std::numeric_limits<std::uint32_t>::max()};
inline constexpr ObjectId kNoObject{std::numeric_limits<std::uint64_t>::max()};

constexpr std::uint32_t raw(ProcessId p) noexcept { return static_cast<std::uint32_t>(p); }
constexpr std::uint64_t raw(ObjectId o) noexcept { return static_cast<std::uint64_t>(o); }

/// A specific copy of a logical object on a specific process.  This is the
/// element type of the CDM algebra's dependency and target sets (the paper
/// writes them as X_P1, X'_P2, ...).
struct Replica {
  ObjectId object{kNoObject};
  ProcessId process{kNoProcess};

  friend constexpr auto operator<=>(const Replica&, const Replica&) = default;
};

/// Human-readable forms used by logs, traces and test diagnostics.
inline std::string to_string(ProcessId p) { return "P" + std::to_string(raw(p)); }
inline std::string to_string(ObjectId o) { return "o" + std::to_string(raw(o)); }
inline std::string to_string(const Replica& r) {
  return to_string(r.object) + "@" + to_string(r.process);
}

}  // namespace rgc

template <>
struct std::hash<rgc::Replica> {
  std::size_t operator()(const rgc::Replica& r) const noexcept {
    const std::uint64_t a = rgc::raw(r.object);
    const std::uint64_t b = rgc::raw(r.process);
    std::uint64_t x = a * 0x9e3779b97f4a7c15ULL ^ (b + 0x517cc1b727220a95ULL);
    x ^= x >> 32;
    return static_cast<std::size_t>(x);
  }
};

template <>
struct std::hash<rgc::ObjectId> {
  std::size_t operator()(rgc::ObjectId o) const noexcept {
    return std::hash<std::uint64_t>{}(rgc::raw(o));
  }
};

template <>
struct std::hash<rgc::ProcessId> {
  std::size_t operator()(rgc::ProcessId p) const noexcept {
    return std::hash<std::uint32_t>{}(rgc::raw(p));
  }
};
