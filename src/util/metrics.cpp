#include "util/metrics.h"

#include <cstdio>

namespace rgc::util {

void Metrics::add(const std::string& name, std::uint64_t delta) {
  counters_[name] += delta;
}

std::uint64_t Metrics::get(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

Counter Metrics::counter(const std::string& name) {
  return Counter{&counters_[name]};
}

Gauge Metrics::gauge(const std::string& name) { return Gauge{&gauges_[name]}; }

std::uint64_t Metrics::gauge_value(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second;
}

Histogram& Metrics::histogram(const std::string& name) {
  return histograms_[name];
}

const Histogram* Metrics::find_histogram(const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void Metrics::reset() {
  for (auto& [name, value] : counters_) value = 0;
  for (auto& [name, value] : gauges_) value = 0;
  for (auto& [name, hist] : histograms_) hist.reset();
}

std::vector<std::pair<std::string, std::uint64_t>> Metrics::snapshot() const {
  return {counters_.begin(), counters_.end()};
}

std::vector<std::pair<std::string, std::uint64_t>> Metrics::gauge_snapshot() const {
  return {gauges_.begin(), gauges_.end()};
}

std::vector<std::pair<std::string, const Histogram*>> Metrics::histogram_snapshot() const {
  std::vector<std::pair<std::string, const Histogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) out.emplace_back(name, &hist);
  return out;
}

std::string Histogram::to_string() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "count=%llu min=%llu max=%llu mean=%.2f",
                static_cast<unsigned long long>(count_),
                static_cast<unsigned long long>(min_),
                static_cast<unsigned long long>(max_), mean());
  return buf;
}

}  // namespace rgc::util
