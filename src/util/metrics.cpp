#include "util/metrics.h"

namespace rgc::util {

void Metrics::add(const std::string& name, std::uint64_t delta) {
  counters_[name] += delta;
}

std::uint64_t Metrics::get(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void Metrics::reset() {
  for (auto& [name, value] : counters_) value = 0;
}

std::vector<std::pair<std::string, std::uint64_t>> Metrics::snapshot() const {
  return {counters_.begin(), counters_.end()};
}

}  // namespace rgc::util
