#include "util/metrics.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace rgc::util {

namespace {

/// `net.sent.CDM` -> `rgc_net_sent_CDM`.
std::string prom_name(std::string_view raw) {
  std::string out = "rgc_";
  for (char c : raw) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) != 0 ? c : '_');
  }
  return out;
}

void prom_line(std::ostream& os, const std::string& name,
               std::string_view labels, std::string_view extra_label,
               double value) {
  os << name;
  if (!labels.empty() || !extra_label.empty()) {
    os << '{' << labels;
    if (!labels.empty() && !extra_label.empty()) os << ',';
    os << extra_label << '}';
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  os << ' ' << buf << '\n';
}

}  // namespace

void Metrics::add(const std::string& name, std::uint64_t delta) {
  counters_[name] += delta;
}

std::uint64_t Metrics::get(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

Counter Metrics::counter(const std::string& name) {
  return Counter{&counters_[name]};
}

Gauge Metrics::gauge(const std::string& name) { return Gauge{&gauges_[name]}; }

std::uint64_t Metrics::gauge_value(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second;
}

Histogram& Metrics::histogram(const std::string& name) {
  return histograms_[name];
}

const Histogram* Metrics::find_histogram(const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void Metrics::reset() {
  for (auto& [name, value] : counters_) value = 0;
  for (auto& [name, value] : gauges_) value = 0;
  for (auto& [name, hist] : histograms_) hist.reset();
}

std::vector<std::pair<std::string, std::uint64_t>> Metrics::snapshot() const {
  return {counters_.begin(), counters_.end()};
}

std::vector<std::pair<std::string, std::uint64_t>> Metrics::gauge_snapshot() const {
  return {gauges_.begin(), gauges_.end()};
}

std::vector<std::pair<std::string, const Histogram*>> Metrics::histogram_snapshot() const {
  std::vector<std::pair<std::string, const Histogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) out.emplace_back(name, &hist);
  return out;
}

std::uint64_t parse_vmhwm_kib(std::string_view status_line) {
  constexpr std::string_view kField = "VmHWM:";
  if (status_line.substr(0, kField.size()) != kField) return 0;
  std::size_t i = kField.size();
  while (i < status_line.size() &&
         (status_line[i] == ' ' || status_line[i] == '\t')) {
    ++i;
  }
  std::uint64_t kib = 0;
  bool any = false;
  for (; i < status_line.size(); ++i) {
    const char c = status_line[i];
    if (c < '0' || c > '9') break;
    if (kib > (~std::uint64_t{0} - (c - '0')) / 10) return 0;  // overflow
    kib = kib * 10 + static_cast<std::uint64_t>(c - '0');
    any = true;
  }
  if (!any || kib > (~std::uint64_t{0}) / 1024) return 0;
  while (i < status_line.size() &&
         (status_line[i] == ' ' || status_line[i] == '\t')) {
    ++i;
  }
  // Procfs reports VmHWM in kB; any other (or missing) unit means the
  // layout is not what we parse, so report "unavailable" over nonsense.
  if (status_line.substr(i, 2) != "kB") return 0;
  return kib;
}

std::uint64_t peak_rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  std::uint64_t kib = 0;
  char line[256];
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if ((kib = parse_vmhwm_kib(line)) != 0) break;
  }
  std::fclose(f);
  return kib * 1024;
}

std::uint64_t Histogram::percentile(double q) const noexcept {
  if (count_ == 0) return 0;
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      // Inclusive upper bound of bucket i (0, 1, 3, 7, 15, ...).
      const std::uint64_t hi = i == 0 ? 0 : (1ull << i) - 1;
      if (hi < min_) return min_;
      return hi > max_ ? max_ : hi;
    }
  }
  return max_;
}

std::string Histogram::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%llu min=%llu max=%llu mean=%.2f p50=%llu p90=%llu "
                "p99=%llu",
                static_cast<unsigned long long>(count_),
                static_cast<unsigned long long>(min_),
                static_cast<unsigned long long>(max_), mean(),
                static_cast<unsigned long long>(percentile(0.50)),
                static_cast<unsigned long long>(percentile(0.90)),
                static_cast<unsigned long long>(percentile(0.99)));
  return buf;
}

void Metrics::to_prometheus(std::ostream& os, std::string_view labels) const {
  for (const auto& [name, value] : counters_) {
    const std::string pn = prom_name(name);
    os << "# TYPE " << pn << " counter\n";
    prom_line(os, pn, labels, {}, static_cast<double>(value));
  }
  for (const auto& [name, value] : gauges_) {
    const std::string pn = prom_name(name);
    os << "# TYPE " << pn << " gauge\n";
    prom_line(os, pn, labels, {}, static_cast<double>(value));
  }
  for (const auto& [name, hist] : histograms_) {
    const std::string pn = prom_name(name);
    os << "# TYPE " << pn << " histogram\n";
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      if (hist.buckets()[i] == 0) continue;
      cum += hist.buckets()[i];
      const std::uint64_t hi = i == 0 ? 0 : (1ull << i) - 1;
      char le[48];
      std::snprintf(le, sizeof(le), "le=\"%llu\"",
                    static_cast<unsigned long long>(hi));
      prom_line(os, pn + "_bucket", labels, le, static_cast<double>(cum));
    }
    prom_line(os, pn + "_bucket", labels, "le=\"+Inf\"",
              static_cast<double>(hist.count()));
    prom_line(os, pn + "_sum", labels, {}, static_cast<double>(hist.sum()));
    prom_line(os, pn + "_count", labels, {}, static_cast<double>(hist.count()));
  }
}

}  // namespace rgc::util
