// Named monotonic counters, gauges, and log2 histograms.
//
// Every subsystem reports into one registry (messages sent per kind, CDMs
// issued, scions cut, objects reclaimed, detections aborted by the race
// barrier, ...).  The benchmark harness reads the registry to print the
// paper's tables; tests use it to assert protocol economy (e.g. Figure 8's
// "fewer CDMs than the baseline").
//
// Hot paths use *pre-registered handles* (Counter / Gauge) resolved once at
// construction time; incrementing through a handle is a single pointer
// dereference.  The string API (`add`/`get`) remains as a compatibility
// shim for cold paths and tests — both views share the same storage, so a
// handle and the string lookup always agree.
#pragma once

#include <array>
#include <bit>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace rgc::util {

/// Pre-registered counter handle: one pointer dereference per increment.
/// Obtained from Metrics::counter(); stays valid for the Metrics' lifetime
/// (reset() zeroes values but never erases slots).
class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t delta = 1) noexcept {
    if (slot_ != nullptr) *slot_ += delta;
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return slot_ == nullptr ? 0 : *slot_;
  }
  [[nodiscard]] bool valid() const noexcept { return slot_ != nullptr; }

 private:
  friend class Metrics;
  explicit Counter(std::uint64_t* slot) noexcept : slot_(slot) {}
  std::uint64_t* slot_{nullptr};
};

/// Pre-registered last-value gauge handle (e.g. net.queue_depth).
class Gauge {
 public:
  Gauge() = default;
  void set(std::uint64_t value) noexcept {
    if (slot_ != nullptr) *slot_ = value;
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return slot_ == nullptr ? 0 : *slot_;
  }

 private:
  friend class Metrics;
  explicit Gauge(std::uint64_t* slot) noexcept : slot_(slot) {}
  std::uint64_t* slot_{nullptr};
};

/// Power-of-two bucketed distribution (bucket i counts values whose bit
/// width is i, i.e. [2^(i-1), 2^i)), plus exact count/sum/min/max.  Cheap
/// enough to record on protocol hot paths: one bit-width + five stores.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 33;  // values up to 2^32 exact

  void record(std::uint64_t value) noexcept {
    ++count_;
    sum_ += value;
    if (count_ == 1 || value < min_) min_ = value;
    if (value > max_) max_ = value;
    const std::size_t b = static_cast<std::size_t>(std::bit_width(value));
    ++buckets_[b < kBuckets ? b : kBuckets - 1];
  }

  void merge(const Histogram& other) noexcept {
    if (other.count_ == 0) return;
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
    count_ += other.count_;
    sum_ += other.sum_;
    for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  }

  void reset() noexcept {
    count_ = sum_ = min_ = max_ = 0;
    buckets_.fill(0);
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  [[nodiscard]] std::uint64_t min() const noexcept { return min_; }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  [[nodiscard]] const std::array<std::uint64_t, kBuckets>& buckets() const noexcept {
    return buckets_;
  }
  /// Inclusive lower bound of bucket `i` (0, 1, 2, 4, 8, ...).
  [[nodiscard]] static std::uint64_t bucket_floor(std::size_t i) noexcept {
    return i <= 1 ? i : 1ull << (i - 1);
  }

  /// Quantile estimate from the log2 buckets: upper bound of the bucket
  /// holding the rank-`ceil(q*count)` sample, clamped to [min, max].  Exact
  /// for distributions narrower than one bucket; within 2x otherwise —
  /// plenty for SLO-style p50/p90/p99 readouts.
  [[nodiscard]] std::uint64_t percentile(double q) const noexcept;

  /// "count=5 min=1 max=9 mean=4.20 p50=4 p90=8 p99=9" — report rendering.
  [[nodiscard]] std::string to_string() const;

 private:
  std::uint64_t count_{0};
  std::uint64_t sum_{0};
  std::uint64_t min_{0};
  std::uint64_t max_{0};
  std::array<std::uint64_t, kBuckets> buckets_{};
};

class Metrics {
 public:
  /// Adds delta to the named counter, creating it at zero if absent.
  /// Compatibility shim: cold paths only — hot paths use counter().
  void add(const std::string& name, std::uint64_t delta = 1);

  /// Current value; zero when the counter was never touched.
  [[nodiscard]] std::uint64_t get(const std::string& name) const;

  /// Pre-registers (or finds) the named counter and returns a stable
  /// handle.  Map nodes never move, so the handle survives any number of
  /// later registrations and reset() calls.
  [[nodiscard]] Counter counter(const std::string& name);

  /// Pre-registers (or finds) the named gauge.
  [[nodiscard]] Gauge gauge(const std::string& name);
  [[nodiscard]] std::uint64_t gauge_value(const std::string& name) const;

  /// Named histogram; the reference is stable for the Metrics' lifetime.
  [[nodiscard]] Histogram& histogram(const std::string& name);
  [[nodiscard]] const Histogram* find_histogram(const std::string& name) const;

  /// Resets every counter/gauge/histogram to zero but keeps them
  /// registered (handles stay valid).
  void reset();

  /// Stable (name, value) listing for reports.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> snapshot() const;
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> gauge_snapshot() const;
  [[nodiscard]] std::vector<std::pair<std::string, const Histogram*>> histogram_snapshot() const;

  /// Prometheus text exposition (v0.0.4) of this registry: counters as
  /// `counter`, gauges as `gauge`, histograms as cumulative-`le` bucket
  /// families with `_sum`/`_count`.  Names are mangled to
  /// `rgc_<name with non-alnum -> '_'>`; `labels` (e.g. `process="P0"`) is
  /// spliced verbatim into every sample's label set.
  void to_prometheus(std::ostream& os, std::string_view labels = {}) const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, std::uint64_t> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// Peak resident set size of this process in bytes (VmHWM from
/// /proc/self/status), or 0 where unavailable.  A host-OS measurement, so —
/// like wall-clock timers — it belongs only in nondeterministic registries
/// (core::Cluster::profile()), never in deterministic reports.
[[nodiscard]] std::uint64_t peak_rss_bytes();

/// Extracts the VmHWM value (in KiB) from one line of /proc/self/status
/// content.  Returns 0 for a missing field, malformed number, wrong unit or
/// a value that would overflow when scaled to bytes — peak_rss_bytes then
/// degrades to 0 instead of reporting garbage on non-Linux /proc layouts.
[[nodiscard]] std::uint64_t parse_vmhwm_kib(std::string_view status_line);

/// Records elapsed wall-clock microseconds into a histogram on destruction;
/// no-op when constructed with nullptr.  Wall times are nondeterministic by
/// nature, so profiling histograms must live in registries excluded from
/// deterministic reports (see core::Cluster::profile()).
class ScopedTimerUs {
 public:
  explicit ScopedTimerUs(Histogram* hist) noexcept : hist_(hist) {
    if (hist_ != nullptr) t0_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimerUs() {
    if (hist_ == nullptr) return;
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - t0_);
    hist_->record(static_cast<std::uint64_t>(us.count()));
  }
  ScopedTimerUs(const ScopedTimerUs&) = delete;
  ScopedTimerUs& operator=(const ScopedTimerUs&) = delete;

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace rgc::util
