// Named monotonic counters.
//
// Every subsystem reports into one registry (messages sent per kind, CDMs
// issued, scions cut, objects reclaimed, detections aborted by the race
// barrier, ...).  The benchmark harness reads the registry to print the
// paper's tables; tests use it to assert protocol economy (e.g. Figure 8's
// "fewer CDMs than the baseline").
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rgc::util {

class Metrics {
 public:
  /// Adds delta to the named counter, creating it at zero if absent.
  void add(const std::string& name, std::uint64_t delta = 1);

  /// Current value; zero when the counter was never touched.
  [[nodiscard]] std::uint64_t get(const std::string& name) const;

  /// Resets every counter to zero but keeps the names registered.
  void reset();

  /// Stable (name, value) listing for reports.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> snapshot() const;

 private:
  std::map<std::string, std::uint64_t> counters_;
};

}  // namespace rgc::util
