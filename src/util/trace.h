// Structured tracing & timeline export.
//
// The paper's claims are about *protocol economy over time* — CDMs per
// detection round, steps until a cycle closes, how snapshot / summarize /
// propagate phases interleave across processes.  End-of-run counters
// cannot show any of that, so this layer records a timeline of typed
// events, each stamped with both clocks the simulator has:
//   - sim_step   — the network's virtual time (deterministic), and
//   - wall_us    — microseconds of real time (for profiling the code).
//
// Three event shapes:
//   - spans    — scoped durations (TRACE_SPAN("lgc.collect", pid)); the
//     guard records begin on construction and emits one event with both
//     durations on destruction;
//   - instants — typed protocol points (a CDM forwarded, a scion dropped).
//     An instant may carry a fresh *lineage id* and a causal *parent* id;
//     CDM events chain these into a cross-process message tree, so a
//     detection can be replayed hop by hop (cf. the causal message lineage
//     Plyukhin & Agha's termination detector reasons with);
//   - counters — sampled values (net.queue_depth) for counter tracks.
//
// Events flow into a Timeline sink.  With no sink attached (the default)
// every emission helper returns before touching its arguments: the hot
// path performs one pointer test and **no allocation**.  The Timeline
// exports two formats: JSONL (one self-describing object per line, the
// machine-readable truth tests and tooling consume) and Chrome
// `trace_event` JSON that chrome://tracing and Perfetto load directly,
// with CDM lineage rendered as flow arrows.  See docs/OBSERVABILITY.md.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "util/ids.h"

namespace rgc::util {

enum class TraceEventType : std::uint8_t { kSpan = 0, kInstant = 1, kCounter = 2 };

/// One key/value annotation.  Values are pre-rendered strings; `numeric`
/// controls whether exporters quote them.
struct TraceArg {
  std::string key;
  std::string value;
  bool numeric{false};

  static TraceArg num(std::string key, std::uint64_t v) {
    return {std::move(key), std::to_string(v), true};
  }
  static TraceArg str(std::string key, std::string v) {
    return {std::move(key), std::move(v), false};
  }
};

struct TraceEvent {
  TraceEventType type{TraceEventType::kInstant};
  /// Static-storage name, dot-scoped ("cdm.forward"); the segment before
  /// the first dot is the category exporters group by.
  const char* name{""};
  std::uint64_t sim_step{0};
  std::uint64_t wall_us{0};
  /// Raw process id; kNoTraceProcess when the event is cluster-global.
  std::uint32_t process{0};
  /// Lineage id (0 = none) and causal parent id (0 = root / not causal).
  std::uint64_t id{0};
  std::uint64_t parent{0};
  /// Spans only: durations in both clocks.
  std::uint64_t dur_steps{0};
  std::uint64_t dur_us{0};
  /// Counters only: the sampled value.
  std::uint64_t value{0};
  std::vector<TraceArg> args;
};

inline constexpr std::uint32_t kNoTraceProcess = 0xffffffffu;

/// Escapes `s` for inclusion inside a JSON string literal (no quotes added).
std::string json_escape(std::string_view s);

/// In-memory event buffer + exporters.
class Timeline {
 public:
  void push(TraceEvent ev) { events_.push_back(std::move(ev)); }
  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  void clear() { events_.clear(); }

  /// One JSON object per line; every field of TraceEvent, zero-valued
  /// optional fields omitted.
  void write_jsonl(std::ostream& os) const;

  /// Chrome trace_event JSON ({"traceEvents":[...]}): spans as complete
  /// ("X") slices on sim-time (1 step = 1000 ticks), instants as thin
  /// slices so lineage flow arrows ("s"/"f") can bind to them, counters as
  /// "C" events, plus process_name metadata.  Loadable in chrome://tracing
  /// and https://ui.perfetto.dev.
  void write_chrome_trace(std::ostream& os) const;

 private:
  std::vector<TraceEvent> events_;
};

/// Global trace facility.  The simulator is single-threaded by design (see
/// util/log.h), so a plain pointer sink suffices; the *context* below is
/// thread-local anyway to keep parallel test binaries honest.
class Trace {
 public:
  [[nodiscard]] static Trace& instance() noexcept;

  /// Attaches (or, with nullptr, detaches) the sink.  Detached is the
  /// default and costs one branch per would-be event.
  void set_sink(Timeline* sink) noexcept { sink_ = sink; }
  [[nodiscard]] bool enabled() const noexcept { return sink_ != nullptr; }
  [[nodiscard]] Timeline* sink() const noexcept { return sink_; }

  /// Fresh lineage id (never 0).  Valid even when disabled, so protocol
  /// state built while tracing is off stays consistent if it is enabled
  /// mid-run.
  std::uint64_t next_id() noexcept { return ++last_id_; }

  // ---- Simulation context -------------------------------------------------
  // The network step loop publishes virtual time and the process whose
  // handler is running; trace events and RGC_LOG lines both stamp them so
  // interleaved protocol output is attributable.
  static void set_sim_now(std::uint64_t step) noexcept;
  [[nodiscard]] static std::uint64_t sim_now() noexcept;
  static void set_current_process(ProcessId pid) noexcept;
  static void clear_current_process() noexcept;
  /// kNoProcess when no process context is active.
  [[nodiscard]] static ProcessId current_process() noexcept;

  /// Microseconds since the first call (steady clock).
  [[nodiscard]] static std::uint64_t wall_us() noexcept;

  // ---- Emission -----------------------------------------------------------
  // All helpers are no-ops without a sink; none of them allocates then.

  /// Instant protocol event.  When `with_id`, the event receives a fresh
  /// lineage id which is returned (0 when disabled or !with_id).
  std::uint64_t instant(const char* name, ProcessId pid,
                        std::uint64_t parent = 0, bool with_id = false,
                        std::vector<TraceArg> args = {});

  /// Counter sample (rendered as a counter track).
  void counter(const char* name, ProcessId pid, std::uint64_t value);

  /// Completed span (normally emitted by SpanGuard, not called directly).
  void span(const char* name, ProcessId pid, std::uint64_t begin_step,
            std::uint64_t begin_us, std::vector<TraceArg> args = {});

 private:
  Timeline* sink_{nullptr};
  std::uint64_t last_id_{0};
};

/// RAII scope: records begin on construction, emits one span event with
/// sim-step and wall-clock durations on destruction.  Does nothing — and
/// allocates nothing — while tracing is disabled.
class SpanGuard {
 public:
  explicit SpanGuard(const char* name, ProcessId pid = kNoProcess)
      : name_(name), pid_(pid), active_(Trace::instance().enabled()) {
    if (active_) {
      begin_step_ = Trace::sim_now();
      begin_us_ = Trace::wall_us();
    }
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;
  ~SpanGuard() {
    if (active_) {
      Trace::instance().span(name_, pid_, begin_step_, begin_us_,
                             std::move(args_));
    }
  }

  /// Attaches a numeric annotation to the span (e.g. objects reclaimed).
  void arg(std::string key, std::uint64_t value) {
    if (active_) args_.push_back(TraceArg::num(std::move(key), value));
  }

 private:
  const char* name_;
  ProcessId pid_;
  std::uint64_t begin_step_{0};
  std::uint64_t begin_us_{0};
  std::vector<TraceArg> args_;
  bool active_;
};

/// Scoped process-context setter for the log/trace attribution satellite:
/// the cluster step loop brackets every handler invocation with the
/// process it runs on.
class ScopedProcess {
 public:
  explicit ScopedProcess(ProcessId pid) : prev_(Trace::current_process()) {
    Trace::set_current_process(pid);
  }
  ScopedProcess(const ScopedProcess&) = delete;
  ScopedProcess& operator=(const ScopedProcess&) = delete;
  ~ScopedProcess() { Trace::set_current_process(prev_); }

 private:
  ProcessId prev_;
};

}  // namespace rgc::util

#define RGC_TRACE_CONCAT_(a, b) a##b
#define RGC_TRACE_CONCAT(a, b) RGC_TRACE_CONCAT_(a, b)

/// TRACE_SPAN("lgc.collect", pid) — scoped span covering the rest of the
/// enclosing block.  The optional trailing argument names the process.
#define TRACE_SPAN(...) \
  ::rgc::util::SpanGuard RGC_TRACE_CONCAT(rgc_span_, __LINE__) { __VA_ARGS__ }
