# Empty dependencies file for fig7_lgc_unitary_cost.
# This may be replaced when dependencies are built.
