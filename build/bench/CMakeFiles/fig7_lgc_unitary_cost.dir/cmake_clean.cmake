file(REMOVE_RECURSE
  "CMakeFiles/fig7_lgc_unitary_cost.dir/fig7_lgc_unitary_cost.cpp.o"
  "CMakeFiles/fig7_lgc_unitary_cost.dir/fig7_lgc_unitary_cost.cpp.o.d"
  "fig7_lgc_unitary_cost"
  "fig7_lgc_unitary_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_lgc_unitary_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
