file(REMOVE_RECURSE
  "CMakeFiles/fig9_cdm_totals.dir/fig9_cdm_totals.cpp.o"
  "CMakeFiles/fig9_cdm_totals.dir/fig9_cdm_totals.cpp.o.d"
  "fig9_cdm_totals"
  "fig9_cdm_totals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_cdm_totals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
