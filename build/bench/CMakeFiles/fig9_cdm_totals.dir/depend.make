# Empty dependencies file for fig9_cdm_totals.
# This may be replaced when dependencies are built.
