# Empty dependencies file for ablation_race_barrier.
# This may be replaced when dependencies are built.
