file(REMOVE_RECURSE
  "CMakeFiles/ablation_race_barrier.dir/ablation_race_barrier.cpp.o"
  "CMakeFiles/ablation_race_barrier.dir/ablation_race_barrier.cpp.o.d"
  "ablation_race_barrier"
  "ablation_race_barrier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_race_barrier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
