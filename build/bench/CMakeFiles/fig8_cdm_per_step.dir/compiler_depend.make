# Empty compiler generated dependencies file for fig8_cdm_per_step.
# This may be replaced when dependencies are built.
