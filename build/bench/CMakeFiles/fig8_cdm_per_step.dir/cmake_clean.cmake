file(REMOVE_RECURSE
  "CMakeFiles/fig8_cdm_per_step.dir/fig8_cdm_per_step.cpp.o"
  "CMakeFiles/fig8_cdm_per_step.dir/fig8_cdm_per_step.cpp.o.d"
  "fig8_cdm_per_step"
  "fig8_cdm_per_step.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_cdm_per_step.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
