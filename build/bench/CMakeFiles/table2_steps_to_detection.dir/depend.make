# Empty dependencies file for table2_steps_to_detection.
# This may be replaced when dependencies are built.
