# Empty compiler generated dependencies file for fig6_lgc_total_overhead.
# This may be replaced when dependencies are built.
