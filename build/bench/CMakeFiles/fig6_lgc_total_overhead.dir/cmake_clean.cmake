file(REMOVE_RECURSE
  "CMakeFiles/fig6_lgc_total_overhead.dir/fig6_lgc_total_overhead.cpp.o"
  "CMakeFiles/fig6_lgc_total_overhead.dir/fig6_lgc_total_overhead.cpp.o.d"
  "fig6_lgc_total_overhead"
  "fig6_lgc_total_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_lgc_total_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
