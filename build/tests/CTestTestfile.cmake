# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/rm_test[1]_include.cmake")
include("/root/repo/build/tests/lgc_test[1]_include.cmake")
include("/root/repo/build/tests/adgc_test[1]_include.cmake")
include("/root/repo/build/tests/summary_test[1]_include.cmake")
include("/root/repo/build/tests/cdm_test[1]_include.cmake")
include("/root/repo/build/tests/detector_test[1]_include.cmake")
include("/root/repo/build/tests/heuristics_test[1]_include.cmake")
include("/root/repo/build/tests/snapshot_io_test[1]_include.cmake")
include("/root/repo/build/tests/daemon_test[1]_include.cmake")
include("/root/repo/build/tests/graphdb_test[1]_include.cmake")
include("/root/repo/build/tests/graphdb_property_test[1]_include.cmake")
include("/root/repo/build/tests/trees_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/figures_test[1]_include.cmake")
include("/root/repo/build/tests/race_test[1]_include.cmake")
include("/root/repo/build/tests/mesh_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/oracle_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/fault_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/chaos_test[1]_include.cmake")
include("/root/repo/build/tests/edge_test[1]_include.cmake")
include("/root/repo/build/tests/algebra_trace_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_guard_test[1]_include.cmake")
include("/root/repo/build/tests/consistency_test[1]_include.cmake")
