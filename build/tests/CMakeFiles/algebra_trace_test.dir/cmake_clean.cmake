file(REMOVE_RECURSE
  "CMakeFiles/algebra_trace_test.dir/algebra_trace_test.cpp.o"
  "CMakeFiles/algebra_trace_test.dir/algebra_trace_test.cpp.o.d"
  "algebra_trace_test"
  "algebra_trace_test.pdb"
  "algebra_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algebra_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
