# Empty compiler generated dependencies file for algebra_trace_test.
# This may be replaced when dependencies are built.
