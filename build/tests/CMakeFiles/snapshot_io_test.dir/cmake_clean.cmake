file(REMOVE_RECURSE
  "CMakeFiles/snapshot_io_test.dir/snapshot_io_test.cpp.o"
  "CMakeFiles/snapshot_io_test.dir/snapshot_io_test.cpp.o.d"
  "snapshot_io_test"
  "snapshot_io_test.pdb"
  "snapshot_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapshot_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
