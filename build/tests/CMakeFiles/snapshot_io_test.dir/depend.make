# Empty dependencies file for snapshot_io_test.
# This may be replaced when dependencies are built.
