# Empty compiler generated dependencies file for adgc_test.
# This may be replaced when dependencies are built.
