file(REMOVE_RECURSE
  "CMakeFiles/adgc_test.dir/adgc_test.cpp.o"
  "CMakeFiles/adgc_test.dir/adgc_test.cpp.o.d"
  "adgc_test"
  "adgc_test.pdb"
  "adgc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adgc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
