# Empty compiler generated dependencies file for protocol_guard_test.
# This may be replaced when dependencies are built.
