file(REMOVE_RECURSE
  "CMakeFiles/protocol_guard_test.dir/protocol_guard_test.cpp.o"
  "CMakeFiles/protocol_guard_test.dir/protocol_guard_test.cpp.o.d"
  "protocol_guard_test"
  "protocol_guard_test.pdb"
  "protocol_guard_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_guard_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
