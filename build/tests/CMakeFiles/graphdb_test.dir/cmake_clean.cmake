file(REMOVE_RECURSE
  "CMakeFiles/graphdb_test.dir/graphdb_test.cpp.o"
  "CMakeFiles/graphdb_test.dir/graphdb_test.cpp.o.d"
  "graphdb_test"
  "graphdb_test.pdb"
  "graphdb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphdb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
