# Empty dependencies file for lgc_test.
# This may be replaced when dependencies are built.
