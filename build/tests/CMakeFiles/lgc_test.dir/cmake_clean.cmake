file(REMOVE_RECURSE
  "CMakeFiles/lgc_test.dir/lgc_test.cpp.o"
  "CMakeFiles/lgc_test.dir/lgc_test.cpp.o.d"
  "lgc_test"
  "lgc_test.pdb"
  "lgc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lgc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
