# Empty dependencies file for graphdb_property_test.
# This may be replaced when dependencies are built.
