file(REMOVE_RECURSE
  "CMakeFiles/graphdb_property_test.dir/graphdb_property_test.cpp.o"
  "CMakeFiles/graphdb_property_test.dir/graphdb_property_test.cpp.o.d"
  "graphdb_property_test"
  "graphdb_property_test.pdb"
  "graphdb_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphdb_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
