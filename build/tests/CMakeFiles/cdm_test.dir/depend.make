# Empty dependencies file for cdm_test.
# This may be replaced when dependencies are built.
