file(REMOVE_RECURSE
  "CMakeFiles/cdm_test.dir/cdm_test.cpp.o"
  "CMakeFiles/cdm_test.dir/cdm_test.cpp.o.d"
  "cdm_test"
  "cdm_test.pdb"
  "cdm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
