# Empty dependencies file for rgc.
# This may be replaced when dependencies are built.
