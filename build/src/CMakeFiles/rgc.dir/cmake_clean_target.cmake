file(REMOVE_RECURSE
  "librgc.a"
)
