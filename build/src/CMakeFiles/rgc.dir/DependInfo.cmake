
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cluster.cpp" "src/CMakeFiles/rgc.dir/core/cluster.cpp.o" "gcc" "src/CMakeFiles/rgc.dir/core/cluster.cpp.o.d"
  "/root/repo/src/core/daemon.cpp" "src/CMakeFiles/rgc.dir/core/daemon.cpp.o" "gcc" "src/CMakeFiles/rgc.dir/core/daemon.cpp.o.d"
  "/root/repo/src/core/oracle.cpp" "src/CMakeFiles/rgc.dir/core/oracle.cpp.o" "gcc" "src/CMakeFiles/rgc.dir/core/oracle.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/rgc.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/rgc.dir/core/report.cpp.o.d"
  "/root/repo/src/gc/adgc/adgc.cpp" "src/CMakeFiles/rgc.dir/gc/adgc/adgc.cpp.o" "gcc" "src/CMakeFiles/rgc.dir/gc/adgc/adgc.cpp.o.d"
  "/root/repo/src/gc/baseline/baseline_detector.cpp" "src/CMakeFiles/rgc.dir/gc/baseline/baseline_detector.cpp.o" "gcc" "src/CMakeFiles/rgc.dir/gc/baseline/baseline_detector.cpp.o.d"
  "/root/repo/src/gc/cycle/cdm.cpp" "src/CMakeFiles/rgc.dir/gc/cycle/cdm.cpp.o" "gcc" "src/CMakeFiles/rgc.dir/gc/cycle/cdm.cpp.o.d"
  "/root/repo/src/gc/cycle/detector.cpp" "src/CMakeFiles/rgc.dir/gc/cycle/detector.cpp.o" "gcc" "src/CMakeFiles/rgc.dir/gc/cycle/detector.cpp.o.d"
  "/root/repo/src/gc/cycle/heuristics.cpp" "src/CMakeFiles/rgc.dir/gc/cycle/heuristics.cpp.o" "gcc" "src/CMakeFiles/rgc.dir/gc/cycle/heuristics.cpp.o.d"
  "/root/repo/src/gc/cycle/snapshot_io.cpp" "src/CMakeFiles/rgc.dir/gc/cycle/snapshot_io.cpp.o" "gcc" "src/CMakeFiles/rgc.dir/gc/cycle/snapshot_io.cpp.o.d"
  "/root/repo/src/gc/cycle/summary.cpp" "src/CMakeFiles/rgc.dir/gc/cycle/summary.cpp.o" "gcc" "src/CMakeFiles/rgc.dir/gc/cycle/summary.cpp.o.d"
  "/root/repo/src/gc/lgc/finalizer.cpp" "src/CMakeFiles/rgc.dir/gc/lgc/finalizer.cpp.o" "gcc" "src/CMakeFiles/rgc.dir/gc/lgc/finalizer.cpp.o.d"
  "/root/repo/src/gc/lgc/lgc.cpp" "src/CMakeFiles/rgc.dir/gc/lgc/lgc.cpp.o" "gcc" "src/CMakeFiles/rgc.dir/gc/lgc/lgc.cpp.o.d"
  "/root/repo/src/graphdb/graphdb.cpp" "src/CMakeFiles/rgc.dir/graphdb/graphdb.cpp.o" "gcc" "src/CMakeFiles/rgc.dir/graphdb/graphdb.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/CMakeFiles/rgc.dir/net/network.cpp.o" "gcc" "src/CMakeFiles/rgc.dir/net/network.cpp.o.d"
  "/root/repo/src/rm/coherence.cpp" "src/CMakeFiles/rgc.dir/rm/coherence.cpp.o" "gcc" "src/CMakeFiles/rgc.dir/rm/coherence.cpp.o.d"
  "/root/repo/src/rm/heap.cpp" "src/CMakeFiles/rgc.dir/rm/heap.cpp.o" "gcc" "src/CMakeFiles/rgc.dir/rm/heap.cpp.o.d"
  "/root/repo/src/rm/process.cpp" "src/CMakeFiles/rgc.dir/rm/process.cpp.o" "gcc" "src/CMakeFiles/rgc.dir/rm/process.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/rgc.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/rgc.dir/util/log.cpp.o.d"
  "/root/repo/src/util/metrics.cpp" "src/CMakeFiles/rgc.dir/util/metrics.cpp.o" "gcc" "src/CMakeFiles/rgc.dir/util/metrics.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/rgc.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/rgc.dir/util/rng.cpp.o.d"
  "/root/repo/src/workload/figures.cpp" "src/CMakeFiles/rgc.dir/workload/figures.cpp.o" "gcc" "src/CMakeFiles/rgc.dir/workload/figures.cpp.o.d"
  "/root/repo/src/workload/mesh.cpp" "src/CMakeFiles/rgc.dir/workload/mesh.cpp.o" "gcc" "src/CMakeFiles/rgc.dir/workload/mesh.cpp.o.d"
  "/root/repo/src/workload/random_mutator.cpp" "src/CMakeFiles/rgc.dir/workload/random_mutator.cpp.o" "gcc" "src/CMakeFiles/rgc.dir/workload/random_mutator.cpp.o.d"
  "/root/repo/src/workload/trees.cpp" "src/CMakeFiles/rgc.dir/workload/trees.cpp.o" "gcc" "src/CMakeFiles/rgc.dir/workload/trees.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
