file(REMOVE_RECURSE
  "CMakeFiles/example_graphdb_tour.dir/graphdb_tour.cpp.o"
  "CMakeFiles/example_graphdb_tour.dir/graphdb_tour.cpp.o.d"
  "example_graphdb_tour"
  "example_graphdb_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_graphdb_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
