# Empty dependencies file for example_graphdb_tour.
# This may be replaced when dependencies are built.
