file(REMOVE_RECURSE
  "CMakeFiles/example_cdm_trace.dir/cdm_trace.cpp.o"
  "CMakeFiles/example_cdm_trace.dir/cdm_trace.cpp.o.d"
  "example_cdm_trace"
  "example_cdm_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_cdm_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
