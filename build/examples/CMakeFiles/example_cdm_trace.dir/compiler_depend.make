# Empty compiler generated dependencies file for example_cdm_trace.
# This may be replaced when dependencies are built.
