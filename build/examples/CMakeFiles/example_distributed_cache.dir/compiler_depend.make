# Empty compiler generated dependencies file for example_distributed_cache.
# This may be replaced when dependencies are built.
