file(REMOVE_RECURSE
  "CMakeFiles/example_distributed_cache.dir/distributed_cache.cpp.o"
  "CMakeFiles/example_distributed_cache.dir/distributed_cache.cpp.o.d"
  "example_distributed_cache"
  "example_distributed_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_distributed_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
