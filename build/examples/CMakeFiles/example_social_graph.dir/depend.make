# Empty dependencies file for example_social_graph.
# This may be replaced when dependencies are built.
