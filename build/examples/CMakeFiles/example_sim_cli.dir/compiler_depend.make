# Empty compiler generated dependencies file for example_sim_cli.
# This may be replaced when dependencies are built.
