file(REMOVE_RECURSE
  "CMakeFiles/example_sim_cli.dir/sim_cli.cpp.o"
  "CMakeFiles/example_sim_cli.dir/sim_cli.cpp.o.d"
  "example_sim_cli"
  "example_sim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
