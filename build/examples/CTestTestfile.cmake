# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example.quickstart]=] "/root/repo/build/examples/example_quickstart")
set_tests_properties([=[example.quickstart]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example.social_graph]=] "/root/repo/build/examples/example_social_graph")
set_tests_properties([=[example.social_graph]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example.distributed_cache]=] "/root/repo/build/examples/example_distributed_cache")
set_tests_properties([=[example.distributed_cache]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example.cdm_trace]=] "/root/repo/build/examples/example_cdm_trace")
set_tests_properties([=[example.cdm_trace]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example.graphdb_tour]=] "/root/repo/build/examples/example_graphdb_tour")
set_tests_properties([=[example.graphdb_tour]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example.sim_cli]=] "/root/repo/build/examples/example_sim_cli")
set_tests_properties([=[example.sim_cli]=] PROPERTIES  PASS_REGULAR_EXPRESSION "converged=yes" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
